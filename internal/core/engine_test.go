package core

import (
	"math"
	"testing"

	"riskroute/internal/geo"
	"riskroute/internal/obs"
	"riskroute/internal/risk"
	"riskroute/internal/stats"
	"riskroute/internal/topology"
)

// gridNet builds a rows×cols lattice network over the central US with
// deterministic pseudo-random risk and population. Lattices have rich path
// diversity, which exercises the risk-averse routing.
func gridNet(rows, cols int, seed uint64) *risk.Context {
	rng := stats.NewRNG(seed)
	n := &topology.Network{Name: "Grid", Tier: topology.Tier1}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n.PoPs = append(n.PoPs, topology.PoP{
				Name:     "P" + string(rune('A'+r)) + string(rune('A'+c)),
				Location: geo.Point{Lat: 32 + float64(r)*1.5, Lon: -100 + float64(c)*1.8},
			})
		}
	}
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				n.Links = append(n.Links, topology.Link{A: idx(r, c), B: idx(r, c+1)})
			}
			if r+1 < rows {
				n.Links = append(n.Links, topology.Link{A: idx(r, c), B: idx(r+1, c)})
			}
		}
	}
	hist := make([]float64, rows*cols)
	fractions := make([]float64, rows*cols)
	fSum := 0.0
	for i := range hist {
		hist[i] = rng.Float64() * 0.5
		fractions[i] = 0.1 + rng.Float64()
		fSum += fractions[i]
	}
	for i := range fractions {
		fractions[i] /= fSum
	}
	return &risk.Context{
		Net:       n,
		Hist:      hist,
		Fractions: fractions,
		Params:    risk.Params{LambdaH: 2e3, LambdaF: 1e3},
	}
}

func mustEngine(t *testing.T, ctx *risk.Context, opts Options) *Engine {
	t.Helper()
	e, err := New(ctx, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	ctx := gridNet(3, 3, 1)
	ctx.Hist = ctx.Hist[:2]
	if _, err := New(ctx, Options{}); err == nil {
		t.Error("misaligned context accepted")
	}
	tiny := &risk.Context{
		Net:  &topology.Network{Name: "One", PoPs: []topology.PoP{{Name: "A"}}},
		Hist: []float64{0}, Fractions: []float64{1},
	}
	if _, err := New(tiny, Options{}); err == nil {
		t.Error("single-PoP network accepted")
	}
}

func TestRiskRoutePairBeatsShortestInBitRisk(t *testing.T) {
	ctx := gridNet(4, 5, 7)
	e := mustEngine(t, ctx, Options{})
	for i := 0; i < e.N(); i += 3 {
		for j := 1; j < e.N(); j += 4 {
			if i == j {
				continue
			}
			rr := e.RiskRoutePair(i, j)
			sp := e.ShortestPair(i, j)
			if rr.BitRiskMiles > sp.BitRiskMiles+1e-6 {
				t.Errorf("pair (%d,%d): RiskRoute bit-risk %v > shortest %v",
					i, j, rr.BitRiskMiles, sp.BitRiskMiles)
			}
			if rr.Miles < sp.Miles-1e-6 {
				t.Errorf("pair (%d,%d): RiskRoute miles %v < shortest-path miles %v",
					i, j, rr.Miles, sp.Miles)
			}
			if rr.Path[0] != i || rr.Path[len(rr.Path)-1] != j {
				t.Errorf("pair (%d,%d): path endpoints %v", i, j, rr.Path)
			}
		}
	}
}

func TestPairResultConsistency(t *testing.T) {
	ctx := gridNet(3, 4, 11)
	e := mustEngine(t, ctx, Options{})
	rr := e.RiskRoutePair(0, 11)
	if got := ctx.PathCost(rr.Path, 0, 11); math.Abs(got-rr.BitRiskMiles) > 1e-9 {
		t.Errorf("BitRiskMiles %v != PathCost %v", rr.BitRiskMiles, got)
	}
	if got := ctx.PathMiles(rr.Path); math.Abs(got-rr.Miles) > 1e-9 {
		t.Errorf("Miles %v != PathMiles %v", rr.Miles, got)
	}
}

func TestEvaluateRatiosRanges(t *testing.T) {
	ctx := gridNet(4, 4, 3)
	e := mustEngine(t, ctx, Options{})
	r := e.Evaluate()
	if r.Pairs != 16*15 {
		t.Errorf("Pairs = %d, want %d", r.Pairs, 16*15)
	}
	if r.RiskReduction < 0 || r.RiskReduction >= 1 {
		t.Errorf("RiskReduction = %v, want [0, 1)", r.RiskReduction)
	}
	if r.DistanceIncrease < -1e-9 {
		t.Errorf("DistanceIncrease = %v, want >= 0", r.DistanceIncrease)
	}
}

func TestEvaluateMatchesExact(t *testing.T) {
	ctx := gridNet(3, 4, 5)
	// Plenty of buckets: quantized should track exact closely.
	quant := mustEngine(t, ctx, Options{AlphaBuckets: 64}).Evaluate()
	exact := mustEngine(t, ctx, Options{}).EvaluateExact()
	if math.Abs(quant.RiskReduction-exact.RiskReduction) > 0.02 {
		t.Errorf("quantized rr %v vs exact %v", quant.RiskReduction, exact.RiskReduction)
	}
	if math.Abs(quant.DistanceIncrease-exact.DistanceIncrease) > 0.02 {
		t.Errorf("quantized dr %v vs exact %v", quant.DistanceIncrease, exact.DistanceIncrease)
	}
	// Exact never reports less reduction than quantized can achieve, up to
	// floating noise: the exact-α path is optimal per pair.
	if quant.RiskReduction > exact.RiskReduction+1e-9 {
		t.Errorf("quantized rr %v exceeds exact %v", quant.RiskReduction, exact.RiskReduction)
	}
}

func TestLambdaMonotonicity(t *testing.T) {
	// Larger λ_h must not decrease the risk-reduction ratio or the distance
	// inflation — Table 2's headline trend.
	base := gridNet(4, 4, 9)
	var prevRR, prevDR float64 = -1, -1
	for _, lh := range []float64{0, 1e3, 1e4, 1e5} {
		ctx := *base
		ctx.Params = risk.Params{LambdaH: lh}
		r := mustEngine(t, &ctx, Options{AlphaBuckets: 32}).Evaluate()
		if r.RiskReduction < prevRR-1e-6 {
			t.Errorf("λ_h=%v: rr %v dropped below %v", lh, r.RiskReduction, prevRR)
		}
		if r.DistanceIncrease < prevDR-1e-6 {
			t.Errorf("λ_h=%v: dr %v dropped below %v", lh, r.DistanceIncrease, prevDR)
		}
		prevRR, prevDR = r.RiskReduction, r.DistanceIncrease
	}
}

func TestZeroLambdaMeansNoChange(t *testing.T) {
	ctx := gridNet(3, 3, 13)
	ctx.Params = risk.Params{}
	r := mustEngine(t, ctx, Options{}).Evaluate()
	if math.Abs(r.RiskReduction) > 1e-9 || math.Abs(r.DistanceIncrease) > 1e-9 {
		t.Errorf("λ=0 should give zero ratios, got %+v", r)
	}
}

func TestEvaluateSubset(t *testing.T) {
	ctx := gridNet(3, 4, 17)
	e := mustEngine(t, ctx, Options{})
	r := e.EvaluateSubset([]int{0, 1}, []int{5, 6, 7})
	if r.Pairs != 6 {
		t.Errorf("subset Pairs = %d, want 6", r.Pairs)
	}
	full := e.Evaluate()
	if full.Pairs <= r.Pairs {
		t.Error("full evaluation should cover more pairs")
	}
}

func TestTotalBitRiskDecreasesWithLinks(t *testing.T) {
	ctx := gridNet(3, 4, 19)
	e := mustEngine(t, ctx, Options{})
	before := e.TotalBitRisk()

	// Add a diagonal shortcut and re-evaluate.
	net2 := ctx.Net.Clone()
	if err := net2.AddLink(0, 11); err != nil {
		t.Fatal(err)
	}
	ctx2 := *ctx
	ctx2.Net = net2
	e2 := mustEngine(t, &ctx2, Options{})
	after := e2.TotalBitRisk()
	if after > before+1e-9 {
		t.Errorf("adding a link increased total bit-risk: %v -> %v", before, after)
	}
	if after >= before {
		t.Errorf("diagonal shortcut should strictly reduce total bit-risk (%v -> %v)", before, after)
	}
}

// horseshoeNet builds a U-shaped chain of PoPs: the two tips are
// geographically close but many hops apart, so tip-to-tip pairs pass the
// paper's >50% bit-mile reduction rule for candidate links.
func horseshoeNet(arms int, seed uint64) *risk.Context {
	rng := stats.NewRNG(seed)
	n := &topology.Network{Name: "Horseshoe", Tier: topology.Tier1}
	// Down the west arm, across the bottom, up the east arm.
	for i := 0; i < arms; i++ {
		n.PoPs = append(n.PoPs, topology.PoP{
			Name:     "W" + string(rune('A'+i)),
			Location: geo.Point{Lat: 44 - float64(i)*2, Lon: -100},
		})
	}
	n.PoPs = append(n.PoPs, topology.PoP{
		Name:     "Base",
		Location: geo.Point{Lat: 44 - float64(arms)*2, Lon: -97},
	})
	for i := 0; i < arms; i++ {
		n.PoPs = append(n.PoPs, topology.PoP{
			Name:     "E" + string(rune('A'+i)),
			Location: geo.Point{Lat: 44 - float64(arms-1-i)*2, Lon: -94},
		})
	}
	for i := 0; i+1 < len(n.PoPs); i++ {
		n.Links = append(n.Links, topology.Link{A: i, B: i + 1})
	}
	total := len(n.PoPs)
	hist := make([]float64, total)
	fractions := make([]float64, total)
	fSum := 0.0
	for i := range hist {
		hist[i] = rng.Float64() * 0.5
		fractions[i] = 0.1 + rng.Float64()
		fSum += fractions[i]
	}
	for i := range fractions {
		fractions[i] /= fSum
	}
	return &risk.Context{
		Net:       n,
		Hist:      hist,
		Fractions: fractions,
		Params:    risk.Params{LambdaH: 2e3, LambdaF: 1e3},
	}
}

func TestCandidateLinksCriterion(t *testing.T) {
	ctx := horseshoeNet(4, 23)
	e := mustEngine(t, ctx, Options{})
	cands := e.CandidateLinks()
	if len(cands) == 0 {
		t.Fatal("horseshoe should have tip-to-tip candidates")
	}
	distAP := ctx.Net.Graph().AllPairs()
	for _, c := range cands {
		if ctx.Net.HasLink(c.A, c.B) {
			t.Errorf("candidate (%d,%d) already linked", c.A, c.B)
		}
		direct := ctx.Net.LinkMiles(c)
		if direct >= 0.5*distAP[c.A][c.B] {
			t.Errorf("candidate (%d,%d) violates the >50%% reduction rule", c.A, c.B)
		}
	}
}

func TestBestAdditionalLinkIsOptimalAmongCandidates(t *testing.T) {
	ctx := horseshoeNet(3, 29)
	e := mustEngine(t, ctx, Options{AlphaBuckets: 32})
	best, err := e.BestAdditionalLink()
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: rebuild the engine for every candidate and compare the
	// exact totals. The bucket-scored winner must be within a whisker of
	// the true optimum.
	cands := e.CandidateLinks()
	bestExact := math.Inf(1)
	var exactTotals []float64
	for _, c := range cands {
		net2 := ctx.Net.Clone()
		if err := net2.AddLink(c.A, c.B); err != nil {
			t.Fatal(err)
		}
		ctx2 := *ctx
		ctx2.Net = net2
		e2 := mustEngine(t, &ctx2, Options{AlphaBuckets: 32})
		total := e2.TotalBitRisk()
		exactTotals = append(exactTotals, total)
		if total < bestExact {
			bestExact = total
		}
	}
	// The chosen link's exact total.
	net2 := ctx.Net.Clone()
	if err := net2.AddLink(best.Link.A, best.Link.B); err != nil {
		t.Fatal(err)
	}
	ctx2 := *ctx
	ctx2.Net = net2
	chosenTotal := mustEngine(t, &ctx2, Options{AlphaBuckets: 32}).TotalBitRisk()
	if chosenTotal > bestExact*1.005 {
		t.Errorf("chosen link total %v, true optimum %v (totals %v)", chosenTotal, bestExact, exactTotals)
	}
}

func TestGreedyAdditionalLinksMonotone(t *testing.T) {
	ctx := horseshoeNet(5, 31)
	e := mustEngine(t, ctx, Options{})
	adds, err := e.GreedyAdditionalLinks(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(adds) == 0 {
		t.Fatal("no additions")
	}
	base := e.TotalBitRisk()
	prev := base
	seen := map[[2]int]bool{}
	for i, a := range adds {
		if a.TotalAfter > prev+1e-6 {
			t.Errorf("step %d increased total: %v -> %v", i, prev, a.TotalAfter)
		}
		if math.Abs(a.Fraction-a.TotalAfter/base) > 1e-9 {
			t.Errorf("step %d fraction inconsistent", i)
		}
		key := [2]int{a.Link.A, a.Link.B}
		if seen[key] {
			t.Errorf("link %v added twice", key)
		}
		seen[key] = true
		prev = a.TotalAfter
	}
	if adds[len(adds)-1].Fraction >= 1 {
		t.Errorf("final fraction %v, want < 1", adds[len(adds)-1].Fraction)
	}
}

func TestGreedyArgErrors(t *testing.T) {
	ctx := gridNet(3, 3, 37)
	e := mustEngine(t, ctx, Options{})
	if _, err := e.GreedyAdditionalLinks(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBestAdditionalLinkNoCandidates(t *testing.T) {
	// A fully connected triangle has no candidates.
	n := &topology.Network{
		Name: "Tri", Tier: topology.Tier1,
		PoPs: []topology.PoP{
			{Name: "A", Location: geo.Point{Lat: 30, Lon: -100}},
			{Name: "B", Location: geo.Point{Lat: 31, Lon: -99}},
			{Name: "C", Location: geo.Point{Lat: 30, Lon: -98}},
		},
		Links: []topology.Link{{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2}},
	}
	ctx := &risk.Context{
		Net:       n,
		Hist:      []float64{0.1, 0.2, 0.3},
		Fractions: []float64{0.3, 0.3, 0.4},
		Params:    risk.PaperParams(),
	}
	e := mustEngine(t, ctx, Options{})
	if _, err := e.BestAdditionalLink(); err == nil {
		t.Error("triangle should have no candidate links")
	}
}

func TestBucketOfRange(t *testing.T) {
	ctx := gridNet(3, 3, 41)
	e := mustEngine(t, ctx, Options{AlphaBuckets: 8})
	for i := 0; i < e.N(); i++ {
		for j := 0; j < e.N(); j++ {
			b := e.bucketOf(e.Ctx.Alpha(i, j))
			if b < 0 || b >= 8 {
				t.Fatalf("bucket %d out of range", b)
			}
		}
	}
	// Out-of-range alphas clamp.
	if e.bucketOf(-1) != 0 || e.bucketOf(99) != 7 {
		t.Error("bucketOf should clamp")
	}
}

func TestUniformFractionsSingleBucket(t *testing.T) {
	ctx := gridNet(3, 3, 43)
	for i := range ctx.Fractions {
		ctx.Fractions[i] = 1.0 / 9
	}
	e := mustEngine(t, ctx, Options{AlphaBuckets: 16})
	if len(e.buckets) != 1 {
		t.Errorf("uniform fractions should collapse to one bucket, got %d", len(e.buckets))
	}
	// And quantized == exact in that case.
	q := e.Evaluate()
	x := e.EvaluateExact()
	if math.Abs(q.RiskReduction-x.RiskReduction) > 1e-9 {
		t.Errorf("single-bucket rr %v != exact %v", q.RiskReduction, x.RiskReduction)
	}
}

func BenchmarkEvaluateGrid36(b *testing.B) {
	ctx := gridNet(6, 6, 47)
	e, err := New(ctx, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate()
	}
}

func BenchmarkRiskRoutePair(b *testing.B) {
	ctx := gridNet(6, 6, 53)
	e, err := New(ctx, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RiskRoutePair(i%36, (i+17)%36)
	}
}

func BenchmarkScoreCandidatesGrid25(b *testing.B) {
	ctx := gridNet(5, 5, 59)
	e, err := New(ctx, Options{})
	if err != nil {
		b.Fatal(err)
	}
	cands := e.CandidateLinks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScoreCandidates(cands)
	}
}

func TestParallelDeterminism(t *testing.T) {
	// Results must be bit-identical at any worker count: per-source partials
	// are reduced in source order.
	ctx := gridNet(5, 5, 137)
	seq := mustEngine(t, ctx, Options{Workers: 1})
	par := mustEngine(t, ctx, Options{Workers: 8})
	rs := seq.Evaluate()
	rp := par.Evaluate()
	if rs != rp {
		t.Errorf("sequential %+v != parallel %+v", rs, rp)
	}
	ts := seq.TotalBitRisk()
	tp := par.TotalBitRisk()
	if ts != tp {
		t.Errorf("sequential total %v != parallel %v", ts, tp)
	}
	sub1 := seq.EvaluateSubset([]int{0, 3, 7}, []int{10, 20, 24})
	sub8 := par.EvaluateSubset([]int{0, 3, 7}, []int{10, 20, 24})
	if sub1 != sub8 {
		t.Errorf("subset: sequential %+v != parallel %+v", sub1, sub8)
	}
}

// The telemetry overhead pair: Evaluate with instrumentation disabled (nil
// registry and trace — every handle is a no-op) versus fully enabled. The
// observability budget in DESIGN.md holds the On/Off delta to <= 2%.
func BenchmarkEvaluateTelemetryOff(b *testing.B) {
	ctx := gridNet(6, 6, 47)
	e, err := New(ctx, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate()
	}
}

func BenchmarkEvaluateTelemetryOn(b *testing.B) {
	ctx := gridNet(6, 6, 47)
	reg := obs.NewRegistry()
	trace := obs.NewTrace("bench")
	e, err := New(ctx, Options{Metrics: reg, Trace: trace})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate()
	}
}
