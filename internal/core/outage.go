package core

import (
	"fmt"
	"math"
	"sort"

	"riskroute/internal/graph"
	"riskroute/internal/topology"
)

// Outage simulation closes the loop the paper motivates: given the set of
// PoPs a disaster takes down (e.g. every PoP inside a hurricane's
// hurricane-force wind field), how much connectivity survives and what does
// rerouting around the failures cost? This is the evaluation a network
// operator would run when deciding whether RiskRoute's provisioning
// recommendations are worth deploying.

// OutageImpact summarizes a simulated multi-PoP failure.
type OutageImpact struct {
	// FailedPoPs is the number of PoPs taken down.
	FailedPoPs int
	// SurvivingPoPs is the number still up.
	SurvivingPoPs int
	// TotalPairs is the number of surviving unordered PoP pairs.
	TotalPairs int
	// DisconnectedPairs counts surviving pairs with no remaining path.
	DisconnectedPairs int
	// ReroutedPairs counts pairs whose shortest path changed (it previously
	// crossed a failed PoP).
	ReroutedPairs int
	// MeanDetourMiles is the mean extra distance over rerouted pairs.
	MeanDetourMiles float64
	// StrandedPopulation is the population fraction served by PoPs that are
	// down or cut off from the largest surviving component.
	StrandedPopulation float64
}

// SimulateOutage fails the given PoPs and measures the surviving topology
// against the intact one. Failed indices out of range or duplicated are
// rejected.
func (e *Engine) SimulateOutage(failed []int) (OutageImpact, error) {
	n := e.N()
	down := make([]bool, n)
	for _, f := range failed {
		if f < 0 || f >= n {
			return OutageImpact{}, fmt.Errorf("core: failed PoP %d out of range", f)
		}
		if down[f] {
			return OutageImpact{}, fmt.Errorf("core: PoP %d failed twice", f)
		}
		down[f] = true
	}

	// Surviving graph: original minus failed nodes (links to failed PoPs
	// drop with them).
	survivors := graph.New(n)
	for _, l := range e.Ctx.Net.Links {
		if !down[l.A] && !down[l.B] {
			survivors.AddEdge(l.A, l.B, e.Ctx.Net.LinkMiles(topology.Link{A: l.A, B: l.B}))
		}
	}

	impact := OutageImpact{FailedPoPs: len(failed), SurvivingPoPs: n - len(failed)}
	var detourSum float64

	for i := 0; i < n; i++ {
		if down[i] {
			continue
		}
		before := e.dist.Dijkstra(i)
		after := survivors.Dijkstra(i)
		for j := i + 1; j < n; j++ {
			if down[j] {
				continue
			}
			impact.TotalPairs++
			switch {
			case math.IsInf(after.Dist[j], 1):
				impact.DisconnectedPairs++
			case after.Dist[j] > before.Dist[j]+1e-9:
				impact.ReroutedPairs++
				detourSum += after.Dist[j] - before.Dist[j]
			}
		}
	}
	if impact.ReroutedPairs > 0 {
		impact.MeanDetourMiles = detourSum / float64(impact.ReroutedPairs)
	}

	// Stranded population: failed PoPs plus surviving PoPs cut off from the
	// largest surviving component (down nodes are isolated in `survivors`,
	// so skip them when sizing components).
	inGiant := giantComponent(survivors, down)
	for i := 0; i < n; i++ {
		if down[i] || !inGiant[i] {
			impact.StrandedPopulation += e.Ctx.Fractions[i]
		}
	}
	return impact, nil
}

// giantComponent marks the members of the largest connected component among
// non-failed nodes.
func giantComponent(g *graph.Graph, down []bool) []bool {
	best := []int(nil)
	for _, comp := range g.Components() {
		// Skip components that consist solely of failed (isolated) nodes.
		alive := comp[:0:0]
		for _, v := range comp {
			if !down[v] {
				alive = append(alive, v)
			}
		}
		if len(alive) > len(best) {
			best = alive
		}
	}
	out := make([]bool, g.N())
	for _, v := range best {
		out[v] = true
	}
	return out
}

// FailedByScope returns the PoP indices a storm scope would take down at
// the given severity: HurricaneForce fails only PoPs that saw
// hurricane-force winds; TropicalForce also fails tropical-storm exposure.
// classify is typically forecast.Scope.Classify wrapped by the caller; it
// receives each PoP index and returns 0 (up), 1 (tropical), or 2
// (hurricane).
func FailedByScope(n *topology.Network, classify func(popIndex int) int, includeTropical bool) []int {
	var out []int
	for i := range n.PoPs {
		c := classify(i)
		if c >= 2 || (includeTropical && c == 1) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
