package core

import (
	"math"
	"testing"

	"riskroute/internal/topology"
)

func TestSimulateOutageNoFailures(t *testing.T) {
	ctx := gridNet(3, 4, 91)
	e := mustEngine(t, ctx, Options{})
	impact, err := e.SimulateOutage(nil)
	if err != nil {
		t.Fatal(err)
	}
	if impact.FailedPoPs != 0 || impact.DisconnectedPairs != 0 || impact.ReroutedPairs != 0 {
		t.Errorf("no-failure impact: %+v", impact)
	}
	if impact.TotalPairs != 12*11/2 {
		t.Errorf("TotalPairs = %d", impact.TotalPairs)
	}
	if impact.StrandedPopulation != 0 {
		t.Errorf("stranded = %v", impact.StrandedPopulation)
	}
}

func TestSimulateOutageInteriorNode(t *testing.T) {
	// Failing one interior lattice node reroutes its neighbors' pairs but
	// disconnects nothing.
	ctx := gridNet(3, 3, 93)
	e := mustEngine(t, ctx, Options{})
	impact, err := e.SimulateOutage([]int{4}) // center of the 3x3 grid
	if err != nil {
		t.Fatal(err)
	}
	if impact.FailedPoPs != 1 || impact.SurvivingPoPs != 8 {
		t.Errorf("counts: %+v", impact)
	}
	if impact.DisconnectedPairs != 0 {
		t.Errorf("lattice minus center should stay connected: %+v", impact)
	}
	if impact.ReroutedPairs == 0 || impact.MeanDetourMiles <= 0 {
		t.Errorf("center failure should force detours: %+v", impact)
	}
	// Only the failed PoP's population is stranded.
	if math.Abs(impact.StrandedPopulation-ctx.Fractions[4]) > 1e-12 {
		t.Errorf("stranded %v, want %v", impact.StrandedPopulation, ctx.Fractions[4])
	}
}

func TestSimulateOutagePartition(t *testing.T) {
	// Failing the base of the horseshoe splits the two arms.
	ctx := horseshoeNet(3, 97)
	e := mustEngine(t, ctx, Options{})
	base := 3 // the middle node
	impact, err := e.SimulateOutage([]int{base})
	if err != nil {
		t.Fatal(err)
	}
	if impact.DisconnectedPairs != 9 { // 3 west x 3 east
		t.Errorf("disconnected pairs = %d, want 9 (%+v)", impact.DisconnectedPairs, impact)
	}
	// One arm survives as the giant component; the failed base plus the
	// other arm are stranded. With equal arm sizes the west arm (found
	// first) wins the tie, stranding the base (index 3) and the east arm.
	wantStranded := ctx.Fractions[3] + ctx.Fractions[4] + ctx.Fractions[5] + ctx.Fractions[6]
	if math.Abs(impact.StrandedPopulation-wantStranded) > 1e-9 {
		t.Errorf("stranded %v, want %v", impact.StrandedPopulation, wantStranded)
	}
}

func TestSimulateOutageValidation(t *testing.T) {
	ctx := gridNet(3, 3, 99)
	e := mustEngine(t, ctx, Options{})
	if _, err := e.SimulateOutage([]int{99}); err == nil {
		t.Error("out-of-range failure accepted")
	}
	if _, err := e.SimulateOutage([]int{1, 1}); err == nil {
		t.Error("duplicate failure accepted")
	}
}

func TestFailedByScope(t *testing.T) {
	net := &topology.Network{
		Name: "S", Tier: topology.Tier1,
		PoPs: make([]topology.PoP, 5),
	}
	classes := []int{0, 1, 2, 1, 2}
	classify := func(i int) int { return classes[i] }
	hOnly := FailedByScope(net, classify, false)
	if len(hOnly) != 2 || hOnly[0] != 2 || hOnly[1] != 4 {
		t.Errorf("hurricane-only failures = %v", hOnly)
	}
	all := FailedByScope(net, classify, true)
	if len(all) != 4 {
		t.Errorf("tropical-inclusive failures = %v", all)
	}
}

func TestGravityImpactRouting(t *testing.T) {
	// An engine with a custom impact function must respect it in Alpha and
	// keep ratios in range.
	ctx := gridNet(3, 4, 101)
	n := len(ctx.Fractions)
	// Synthetic "traffic matrix": heavy between corners, light elsewhere.
	ctx.Impact = func(i, j int) float64 {
		if (i == 0 && j == n-1) || (i == n-1 && j == 0) {
			return 1.0
		}
		return 0.01
	}
	e := mustEngine(t, ctx, Options{AlphaBuckets: 16})
	if got := e.Ctx.Alpha(0, n-1); got != 1.0 {
		t.Errorf("Alpha override = %v", got)
	}
	r := e.Evaluate()
	if r.RiskReduction < 0 || r.RiskReduction >= 1 {
		t.Errorf("rr = %v", r.RiskReduction)
	}
	// The heavy pair routes more risk-aversely than under a tiny impact.
	heavy := e.RiskRoutePair(0, n-1)
	light := e.RiskRoutePair(1, n-2)
	if heavy.Path == nil || light.Path == nil {
		t.Fatal("missing paths")
	}

	// Negative impact is rejected at engine construction.
	ctx2 := gridNet(3, 3, 103)
	ctx2.Impact = func(i, j int) float64 { return -1 }
	if _, err := New(ctx2, Options{}); err == nil {
		t.Error("negative impact accepted")
	}
}
