// Package risk implements the paper's central metric: bit-risk miles
// (Definition 1 and Equation 1). For a routing path p = {p1..pK} between
// PoPs i and j,
//
//	r_ij(p) = Σ_{x=2..K} [ d(p_x, p_{x-1}) + α_ij·(λ_h·o_h(p_x) + λ_f·o_f(p_x)) ]
//
// where d is line-of-sight miles, α_ij = c_i + c_j is the outage impact of
// the endpoint pair, o_h is historical outage risk, o_f is
// immediate/forecasted outage risk, and λ_h, λ_f are the operator's
// risk-averseness knobs.
//
// # Symmetric edge-risk formulation
//
// Equation 1 charges the risk of the node being entered (every path node
// except the source). Routing here instead charges each traversed edge
// (u, v) the symmetric amount α·(ρ(u) + ρ(v))/2, with ρ(v) = λ_h·o_h(v) +
// λ_f·o_f(v). For a fixed endpoint pair the two formulations differ by the
// constant α·(ρ(p_1) − ρ(p_K))/2 — independent of the route taken — so the
// arg-min path of Equation 3 is identical, while the weighted graph stays
// symmetric (enabling shared all-pairs tables). PathCost reports the
// paper's entered-node value; PathCostSymmetric the symmetric one; a
// property test pins their constant-offset relationship.
package risk

import (
	"fmt"

	"riskroute/internal/graph"
	"riskroute/internal/topology"
)

// Params are the bit-risk tuning parameters. The paper's experiments use
// λ_h = 10⁵ (10⁶ in the right half of Table 2) and λ_f = 10³.
type Params struct {
	LambdaH float64
	LambdaF float64
}

// PaperParams returns the paper's default tuning parameters.
func PaperParams() Params { return Params{LambdaH: 1e5, LambdaF: 1e3} }

// Context binds one network to everything the bit-risk metric needs: the
// per-PoP historical risk o_h, the per-PoP forecast risk o_f (nil when no
// disaster forecast is active), the per-PoP population fractions c_i, and
// the tuning parameters.
type Context struct {
	Net       *topology.Network
	Hist      []float64 // o_h, index-aligned with Net.PoPs
	Forecast  []float64 // o_f, nil or index-aligned
	Fractions []float64 // c_i, index-aligned
	Params    Params
	// Impact optionally overrides the default α_ij = c_i + c_j with an
	// arbitrary symmetric pairwise impact — e.g. a gravity-model traffic
	// matrix (population.GravityImpactFunc), SLA tiers, or critical peering
	// relationships, as Section 5 of the paper suggests. Values must be
	// non-negative and symmetric; Fractions remain required (they seed the
	// engine's quantization range when Impact is nil).
	Impact func(i, j int) float64

	// linkHist carries optional per-span historical risk (set via
	// SetLinkHist): the paper attaches risk to PoPs only, but fiber spans
	// cross risky terrain too — a Gulf-hugging link is exposed even when
	// both endpoints are inland. Keyed by normalized (min,max) endpoints.
	linkHist map[[2]int]float64
}

// SetLinkHist attaches per-link historical risk, index-aligned with
// Net.Links (hazard.LinkRisks produces such a slice). Each traversed link
// then contributes α·λ_h·linkRisk on top of the endpoint terms, in both the
// entered-node and symmetric cost forms (the constant-offset equivalence is
// unaffected because the span term is identical in both). Passing nil
// clears span risk. It panics on a length mismatch or negative values.
func (c *Context) SetLinkHist(vals []float64) {
	if vals == nil {
		c.linkHist = nil
		return
	}
	if len(vals) != len(c.Net.Links) {
		panic(fmt.Sprintf("risk: %d link risks for %d links", len(vals), len(c.Net.Links)))
	}
	m := make(map[[2]int]float64, len(vals))
	for i, l := range c.Net.Links {
		if vals[i] < 0 {
			panic("risk: negative link risk")
		}
		m[linkKey(l.A, l.B)] = vals[i]
	}
	c.linkHist = m
}

func linkKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// LinkRisk returns the λ_h-scaled span risk of the link between u and v
// (zero when span risk is not configured or the pair is not linked).
func (c *Context) LinkRisk(u, v int) float64 {
	if c.linkHist == nil {
		return 0
	}
	return c.Params.LambdaH * c.linkHist[linkKey(u, v)]
}

// Validate checks the context's slices are index-aligned with the network
// and that parameters are non-negative.
func (c *Context) Validate() error {
	n := len(c.Net.PoPs)
	if len(c.Hist) != n {
		return fmt.Errorf("risk: Hist has %d entries for %d PoPs", len(c.Hist), n)
	}
	if c.Forecast != nil && len(c.Forecast) != n {
		return fmt.Errorf("risk: Forecast has %d entries for %d PoPs", len(c.Forecast), n)
	}
	if len(c.Fractions) != n {
		return fmt.Errorf("risk: Fractions has %d entries for %d PoPs", len(c.Fractions), n)
	}
	if c.Params.LambdaH < 0 || c.Params.LambdaF < 0 {
		return fmt.Errorf("risk: negative tuning parameters %+v", c.Params)
	}
	for i, h := range c.Hist {
		if h < 0 {
			return fmt.Errorf("risk: negative historical risk at PoP %d", i)
		}
	}
	return nil
}

// NodeRisk returns ρ(v) = λ_h·o_h(v) + λ_f·o_f(v), the λ-scaled outage risk
// of PoP v.
func (c *Context) NodeRisk(v int) float64 {
	r := c.Params.LambdaH * c.Hist[v]
	if c.Forecast != nil {
		r += c.Params.LambdaF * c.Forecast[v]
	}
	return r
}

// Alpha returns the outage impact of an endpoint pair: the Impact override
// when set, otherwise the paper's default α_ij = c_i + c_j.
func (c *Context) Alpha(i, j int) float64 {
	if c.Impact != nil {
		return c.Impact(i, j)
	}
	return c.Fractions[i] + c.Fractions[j]
}

// EdgeWeight returns the symmetric bit-risk weight of traversing the edge
// (u, v) under endpoint impact alpha.
func (c *Context) EdgeWeight(u, v int, alpha float64) float64 {
	d := c.Net.LinkMiles(topology.Link{A: u, B: v})
	return d + alpha*((c.NodeRisk(u)+c.NodeRisk(v))/2+c.LinkRisk(u, v))
}

// WeightedGraph builds the risk-weighted routing graph for endpoint impact
// alpha: edge (u, v) carries d(u,v) + α·(ρ(u)+ρ(v))/2.
func (c *Context) WeightedGraph(alpha float64) *graph.Graph {
	g := graph.New(len(c.Net.PoPs))
	for _, l := range c.Net.Links {
		g.AddEdge(l.A, l.B, c.EdgeWeight(l.A, l.B, alpha))
	}
	return g
}

// DistanceGraph builds the pure bit-mile (geographic shortest-path) graph.
func (c *Context) DistanceGraph() *graph.Graph {
	return c.Net.Graph()
}

// PathMiles returns the geographic length of a path in miles.
func (c *Context) PathMiles(path []int) float64 {
	total := 0.0
	for x := 1; x < len(path); x++ {
		total += c.Net.LinkMiles(topology.Link{A: path[x-1], B: path[x]})
	}
	return total
}

// PathRiskSum returns Σ over traversed edges of (ρ(u)+ρ(v))/2 plus any
// span risk — the α-independent risk content of a path under the symmetric
// formulation.
func (c *Context) PathRiskSum(path []int) float64 {
	total := 0.0
	for x := 1; x < len(path); x++ {
		total += (c.NodeRisk(path[x-1])+c.NodeRisk(path[x]))/2 + c.LinkRisk(path[x-1], path[x])
	}
	return total
}

// PathCost evaluates Equation 1 exactly: distance plus impact-scaled risk of
// every node entered (all path nodes except the first). The path's
// endpoints need not be i and j; alpha is taken from the pair (i, j) given.
func (c *Context) PathCost(path []int, i, j int) float64 {
	alpha := c.Alpha(i, j)
	total := 0.0
	for x := 1; x < len(path); x++ {
		total += c.Net.LinkMiles(topology.Link{A: path[x-1], B: path[x]})
		total += alpha * (c.NodeRisk(path[x]) + c.LinkRisk(path[x-1], path[x]))
	}
	return total
}

// PathCostSymmetric evaluates the symmetric-edge variant used for routing:
// distance plus α·(ρ(u)+ρ(v))/2 per traversed edge. It differs from
// PathCost by α·(ρ(first) − ρ(last))/2, a route-independent constant for a
// fixed endpoint pair.
func (c *Context) PathCostSymmetric(path []int, i, j int) float64 {
	if len(path) < 2 {
		return 0
	}
	return c.PathMiles(path) + c.Alpha(i, j)*c.PathRiskSum(path)
}
