package risk

import (
	"math"
	"testing"
	"testing/quick"

	"riskroute/internal/geo"
	"riskroute/internal/stats"
	"riskroute/internal/topology"
)

// diamondNet builds a 4-PoP diamond: A - B - D and A - C - D, where the
// B side is geographically shorter but C is risk-free.
func diamondNet() *topology.Network {
	return &topology.Network{
		Name: "Diamond",
		Tier: topology.Tier1,
		PoPs: []topology.PoP{
			{Name: "A", Location: geo.Point{Lat: 30, Lon: -95}},
			{Name: "B", Location: geo.Point{Lat: 31, Lon: -92}}, // short, risky
			{Name: "C", Location: geo.Point{Lat: 34, Lon: -92}}, // long, safe
			{Name: "D", Location: geo.Point{Lat: 30, Lon: -89}},
		},
		Links: []topology.Link{{A: 0, B: 1}, {A: 1, B: 3}, {A: 0, B: 2}, {A: 2, B: 3}},
	}
}

func diamondCtx(lambdaH float64) *Context {
	return &Context{
		Net:       diamondNet(),
		Hist:      []float64{0, 1, 0, 0}, // all risk concentrated at B
		Fractions: []float64{0.25, 0.25, 0.25, 0.25},
		Params:    Params{LambdaH: lambdaH, LambdaF: 1e3},
	}
}

func TestValidate(t *testing.T) {
	c := diamondCtx(1e5)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid context rejected: %v", err)
	}
	bad := *c
	bad.Hist = []float64{1}
	if bad.Validate() == nil {
		t.Error("short Hist accepted")
	}
	bad = *c
	bad.Forecast = []float64{1}
	if bad.Validate() == nil {
		t.Error("short Forecast accepted")
	}
	bad = *c
	bad.Fractions = nil
	if bad.Validate() == nil {
		t.Error("missing Fractions accepted")
	}
	bad = *c
	bad.Params.LambdaH = -1
	if bad.Validate() == nil {
		t.Error("negative lambda accepted")
	}
	bad = *c
	bad.Hist = []float64{0, -1, 0, 0}
	if bad.Validate() == nil {
		t.Error("negative risk accepted")
	}
}

func TestNodeRiskComposition(t *testing.T) {
	c := diamondCtx(100)
	if got := c.NodeRisk(1); got != 100 {
		t.Errorf("NodeRisk(1) = %v, want 100 (no forecast)", got)
	}
	c.Forecast = []float64{0, 50, 0, 0}
	if got := c.NodeRisk(1); got != 100+50*1e3 {
		t.Errorf("NodeRisk(1) with forecast = %v, want %v", got, 100+50*1e3)
	}
	if got := c.NodeRisk(0); got != 0 {
		t.Errorf("NodeRisk(0) = %v, want 0", got)
	}
}

func TestAlpha(t *testing.T) {
	c := diamondCtx(1)
	if got := c.Alpha(0, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Alpha = %v, want 0.5", got)
	}
}

func TestRiskAverseRoutingKicksIn(t *testing.T) {
	// With λ_h = 0 the short risky side wins; with large λ_h the safe side
	// wins despite being longer.
	neutral := diamondCtx(0)
	g := neutral.WeightedGraph(neutral.Alpha(0, 3))
	path, _ := g.ShortestPath(0, 3)
	if len(path) != 3 || path[1] != 1 {
		t.Errorf("neutral path = %v, want via B (node 1)", path)
	}

	averse := diamondCtx(1e5)
	g = averse.WeightedGraph(averse.Alpha(0, 3))
	path, _ = g.ShortestPath(0, 3)
	if len(path) != 3 || path[1] != 2 {
		t.Errorf("risk-averse path = %v, want via C (node 2)", path)
	}
}

func TestPathCostEquationOne(t *testing.T) {
	c := diamondCtx(1e4)
	path := []int{0, 1, 3}
	alpha := c.Alpha(0, 3)
	wantDist := c.PathMiles(path)
	// Risk of entered nodes: B (risk 1·λ_h) and D (risk 0).
	want := wantDist + alpha*1e4*1
	if got := c.PathCost(path, 0, 3); math.Abs(got-want) > 1e-6 {
		t.Errorf("PathCost = %v, want %v", got, want)
	}
}

func TestSymmetricConstantOffsetProperty(t *testing.T) {
	// For any two paths between the same endpoints, the entered-node cost
	// and the symmetric cost must differ by the same constant, so arg-min
	// is preserved. Verified on random contexts and paths.
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		net := diamondNet()
		c := &Context{
			Net:       net,
			Hist:      []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			Fractions: []float64{0.1, 0.2, 0.3, 0.4},
			Params:    Params{LambdaH: rng.Range(0, 1e5), LambdaF: 0},
		}
		pathB := []int{0, 1, 3}
		pathC := []int{0, 2, 3}
		offsetB := c.PathCost(pathB, 0, 3) - c.PathCostSymmetric(pathB, 0, 3)
		offsetC := c.PathCost(pathC, 0, 3) - c.PathCostSymmetric(pathC, 0, 3)
		// Offsets equal across routes, and equal to α(ρ(last)-ρ(first))/2.
		alpha := c.Alpha(0, 3)
		wantOffset := alpha * (c.NodeRisk(3) - c.NodeRisk(0)) / 2
		return math.Abs(offsetB-offsetC) < 1e-9 && math.Abs(offsetB-wantOffset) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("constant offset property failed: %v", err)
	}
}

func TestWeightedGraphMatchesEdgeWeight(t *testing.T) {
	c := diamondCtx(1e4)
	alpha := 0.37
	g := c.WeightedGraph(alpha)
	if g.M() != len(c.Net.Links) {
		t.Fatalf("weighted graph has %d edges, want %d", g.M(), len(c.Net.Links))
	}
	for _, e := range g.Edges() {
		want := c.EdgeWeight(e.U, e.V, alpha)
		if math.Abs(e.Weight-want) > 1e-9 {
			t.Errorf("edge (%d,%d) weight %v, want %v", e.U, e.V, e.Weight, want)
		}
	}
}

func TestEdgeWeightMonotoneInAlphaAndRisk(t *testing.T) {
	c := diamondCtx(1e4)
	w1 := c.EdgeWeight(0, 1, 0.1)
	w2 := c.EdgeWeight(0, 1, 0.5)
	if w2 <= w1 {
		t.Errorf("edge weight should grow with alpha: %v vs %v", w1, w2)
	}
	// Risk-free edge: weight equals distance regardless of alpha.
	w := c.EdgeWeight(0, 2, 0.9)
	d := c.Net.LinkMiles(topology.Link{A: 0, B: 2})
	if math.Abs(w-d) > 1e-9 {
		t.Errorf("risk-free edge weight %v, want distance %v", w, d)
	}
}

func TestPathMilesAndRiskSum(t *testing.T) {
	c := diamondCtx(1)
	path := []int{0, 1, 3}
	wantMiles := c.Net.LinkMiles(topology.Link{A: 0, B: 1}) + c.Net.LinkMiles(topology.Link{A: 1, B: 3})
	if got := c.PathMiles(path); math.Abs(got-wantMiles) > 1e-9 {
		t.Errorf("PathMiles = %v, want %v", got, wantMiles)
	}
	// Risk sum: edges (0,1) and (1,3) each carry half of B's risk ρ=1.
	if got := c.PathRiskSum(path); math.Abs(got-1) > 1e-12 {
		t.Errorf("PathRiskSum = %v, want 1", got)
	}
	if got := c.PathMiles([]int{2}); got != 0 {
		t.Errorf("single-node PathMiles = %v", got)
	}
	if got := c.PathCostSymmetric([]int{2}, 0, 3); got != 0 {
		t.Errorf("single-node symmetric cost = %v", got)
	}
}

func TestForecastChangesRouting(t *testing.T) {
	// Historical risk 0 everywhere; an active forecast over B should push
	// routing to the C side at the paper's λ_f.
	c := &Context{
		Net:       diamondNet(),
		Hist:      []float64{0, 0, 0, 0},
		Forecast:  []float64{0, 100, 0, 0}, // hurricane-force winds over B
		Fractions: []float64{0.25, 0.25, 0.25, 0.25},
		Params:    PaperParams(),
	}
	g := c.WeightedGraph(c.Alpha(0, 3))
	path, _ := g.ShortestPath(0, 3)
	if len(path) != 3 || path[1] != 2 {
		t.Errorf("forecast-averse path = %v, want via C", path)
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams()
	if p.LambdaH != 1e5 || p.LambdaF != 1e3 {
		t.Errorf("PaperParams = %+v", p)
	}
}

func TestLinkRiskRouting(t *testing.T) {
	// Diamond with zero node risk everywhere: only span risk differs. The
	// short B side crosses a hot zone; routing should take the C side.
	c := &Context{
		Net:       diamondNet(),
		Hist:      []float64{0, 0, 0, 0},
		Fractions: []float64{0.25, 0.25, 0.25, 0.25},
		Params:    Params{LambdaH: 1e5},
	}
	// Links: (0,1), (1,3), (0,2), (2,3) — make the B-side spans risky.
	c.SetLinkHist([]float64{0.5, 0.5, 0, 0})

	if got := c.LinkRisk(0, 1); got != 1e5*0.5 {
		t.Errorf("LinkRisk(0,1) = %v", got)
	}
	if got := c.LinkRisk(1, 0); got != 1e5*0.5 {
		t.Error("LinkRisk should be symmetric")
	}
	if got := c.LinkRisk(0, 2); got != 0 {
		t.Errorf("safe span risk = %v", got)
	}

	g := c.WeightedGraph(c.Alpha(0, 3))
	path, _ := g.ShortestPath(0, 3)
	if len(path) != 3 || path[1] != 2 {
		t.Errorf("span-risk-averse path = %v, want via C", path)
	}

	// Eq.1 extension: path cost includes the span term.
	costB := c.PathCost([]int{0, 1, 3}, 0, 3)
	wantB := c.PathMiles([]int{0, 1, 3}) + c.Alpha(0, 3)*1e5*(0.5+0.5)
	if math.Abs(costB-wantB) > 1e-6 {
		t.Errorf("PathCost with spans = %v, want %v", costB, wantB)
	}

	// Constant-offset equivalence still holds with span risk present.
	offB := c.PathCost([]int{0, 1, 3}, 0, 3) - c.PathCostSymmetric([]int{0, 1, 3}, 0, 3)
	offC := c.PathCost([]int{0, 2, 3}, 0, 3) - c.PathCostSymmetric([]int{0, 2, 3}, 0, 3)
	if math.Abs(offB-offC) > 1e-9 {
		t.Errorf("offsets differ with span risk: %v vs %v", offB, offC)
	}

	// Clearing restores zero span risk.
	c.SetLinkHist(nil)
	if c.LinkRisk(0, 1) != 0 {
		t.Error("SetLinkHist(nil) did not clear span risk")
	}
}

func TestSetLinkHistValidation(t *testing.T) {
	c := diamondCtx(1e5)
	for name, vals := range map[string][]float64{
		"short":    {1, 2},
		"negative": {-1, 0, 0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			c.SetLinkHist(vals)
		}()
	}
}
