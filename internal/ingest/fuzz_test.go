package ingest

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the journal codec. The
// invariants, for ANY input:
//
//   - decodeRecords never panics and never allocates past the record cap;
//   - the valid prefix re-encodes byte-identically (decode∘encode = id on
//     the accepted region), so replay is lossless;
//   - torn and corrupt are mutually exclusive, and a clean parse claims
//     the whole input;
//   - truncating or bit-flipping the tail of a well-formed journal fails
//     closed: the intact prefix survives, nothing fabricated appears.
func FuzzJournalReplay(f *testing.F) {
	// Seed with well-formed journals, a torn tail, and a bit-flip.
	var well []byte
	well = encodeRecord(well, Record{Seq: 1, Text: "HURRICANE IRENE ADVISORY 1"})
	well = encodeRecord(well, Record{Seq: 2, Text: "HURRICANE IRENE ADVISORY 2"})
	f.Add(well)
	f.Add(well[:len(well)-5])
	flipped := bytes.Clone(well)
	flipped[len(flipped)-1] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn, corrupt := decodeRecords(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		if torn && corrupt {
			t.Fatal("torn and corrupt both set")
		}
		if !torn && !corrupt && valid != len(data) {
			t.Fatalf("clean parse stopped at %d of %d bytes", valid, len(data))
		}
		var re []byte
		var lastSeq uint64
		for i, rec := range recs {
			if i > 0 && rec.Seq <= lastSeq {
				t.Fatalf("accepted non-monotonic seq %d after %d", rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			re = encodeRecord(re, rec)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("valid prefix does not round-trip: %d bytes in, %d re-encoded", valid, len(re))
		}

		// Fail-closed under tail damage: append a known-good record to the
		// accepted prefix, then truncate or flip its tail. The prefix must
		// still decode intact and no new record may materialize.
		good := encodeRecord(bytes.Clone(data[:valid]), Record{Seq: lastSeq + 1, Text: "tail probe"})
		for _, cut := range []int{1, 5, recordHeader} {
			if cut >= len(good)-valid {
				continue
			}
			pr, pv, pt, pc := decodeRecords(good[:len(good)-cut])
			if len(pr) != len(recs) || pv != valid || !pt || pc {
				t.Fatalf("truncated tail (cut %d): recs=%d valid=%d torn=%v corrupt=%v", cut, len(pr), pv, pt, pc)
			}
		}
		dam := bytes.Clone(good)
		dam[len(dam)-3] ^= 0x01
		pr, pv, pt, pc := decodeRecords(dam)
		if len(pr) != len(recs) || pv != valid || !pt || pc {
			t.Fatalf("bit-flipped tail: recs=%d valid=%d torn=%v corrupt=%v", len(pr), pv, pt, pc)
		}
	})
}

// FuzzJournalAppendReplay drives the full file path: a journal built from
// fuzzer-chosen advisory texts must replay exactly, even after the file
// loses its final bytes.
func FuzzJournalAppendReplay(f *testing.F) {
	f.Add("ADVISORY ONE\x00ADVISORY TWO", uint8(3))
	f.Add("", uint8(0))
	f.Fuzz(func(t *testing.T, joined string, chop uint8) {
		texts := splitNull(joined)
		dir := t.TempDir()
		j, recs, err := OpenJournal(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if len(recs) != 0 {
			t.Fatalf("fresh journal replayed %d records", len(recs))
		}
		for _, text := range texts {
			if len(text)+8 > maxRecordBytes {
				continue
			}
			if _, err := j.Append(text); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		wrote := j.Records()
		j.Close()

		recs2 := replayAll(t, dir)
		if len(recs2) != wrote {
			t.Fatalf("replayed %d of %d records", len(recs2), wrote)
		}

		// Chop up to chop bytes off the tail: replay must never error (a
		// short file is torn, not corrupt) and never invent records.
		if chop > 0 {
			data := readFileT(t, dir)
			if n := len(data) - int(chop); n >= 0 {
				writeFileT(t, dir, data[:n])
				recs3 := replayAll(t, dir)
				if len(recs3) > wrote {
					t.Fatalf("truncated journal grew: %d > %d", len(recs3), wrote)
				}
			}
		}
	})
}

func splitNull(s string) []string {
	var out []string
	for len(s) > 0 {
		i := bytes.IndexByte([]byte(s), 0)
		if i < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:i])
		s = s[i+1:]
	}
	return out
}

func replayAll(t *testing.T, dir string) []Record {
	t.Helper()
	j, recs, err := OpenJournal(dir)
	if err != nil {
		// A chopped header (file shorter than journalHeader) legitimately
		// fails magic validation; treat only record-level errors as fatal.
		if len(readFileT(t, dir)) < journalHeader {
			return nil
		}
		t.Fatalf("replay: %v", err)
	}
	j.Close()
	return recs
}

func readFileT(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeFileT(t *testing.T, dir string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
		t.Fatal(err)
	}
}
