// Package ingest is the serving daemon's continuous advisory ingestion
// subsystem: a feed poller that turns a flaky external advisory source into
// a crash-safe stream of snapshot swaps.
//
// The pipeline for one advisory is
//
//	poll → validate → dedupe → journal (fsync) → swap → verify
//
// with a failure policy at every stage:
//
//   - Poll attempts run under a per-attempt timeout, feed failures back off
//     exponentially with deterministic jitter, and a circuit breaker trips
//     after consecutive failures, half-opening on a probe after a cooldown.
//   - Advisories that fail validation (forecast.ValidateAdvisory) are
//     quarantined to a dead-letter directory with the failure reason and
//     never touch the journal or the serving world.
//   - Accepted advisories are appended — and fsynced — to a checksummed,
//     length-prefixed write-ahead journal *before* the swap is attempted,
//     so a process killed at any instant recovers to the exact pre-crash
//     generation by replaying the journal at boot (Recover).
//   - The swap runs inside a panic-recovery guard; a swap that errors or
//     panics quarantines the advisory, and a world that fails post-publish
//     verification is rolled back by republishing the last good snapshot
//     under a fresh generation (Swapper.RevertAdvisory), so readers never
//     see a torn world and generations stay monotonic.
//
// Every lifecycle event is observable: ingest.* counters and gauges in the
// metrics registry, health events, leveled logs, and the Status document
// the daemon serves at /v1/ingest.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"riskroute/internal/forecast"
	"riskroute/internal/obs"
	"riskroute/internal/resilience"
)

// Swapper is the serving surface the poller drives. *serve.Server
// implements it; tests substitute fakes.
type Swapper interface {
	// ApplyParsed swaps a validated advisory into the serving world and
	// returns the generation now serving.
	ApplyParsed(adv *forecast.Advisory) (uint64, error)
	// RevertAdvisory republishes the snapshot that preceded generation
	// fromGen under a fresh generation — the rollback half of a swap whose
	// published world failed verification.
	RevertAdvisory(fromGen uint64) (uint64, error)
	// Generation returns the currently served generation.
	Generation() uint64
}

// timedSwapper is the optional Swapper extension the serving layer
// implements: the poller hands over how long validation took so the swap
// timeline (/v1/generations) can report the full parse/rebuild/swap
// breakdown. Swappers without it (test fakes) get plain ApplyParsed.
type timedSwapper interface {
	ApplyParsedTimed(adv *forecast.Advisory, parseDur time.Duration) (uint64, error)
}

// Config tunes a Poller.
type Config struct {
	// Source is the advisory feed; nil builds a recovery-only poller
	// (Recover works, Run errors).
	Source Source
	// JournalDir holds the write-ahead journal and the quarantine
	// dead-letter directory. Required.
	JournalDir string
	// Interval is the healthy-feed poll cadence (default 10s).
	Interval time.Duration
	// PollTimeout bounds one poll attempt (default 5s).
	PollTimeout time.Duration
	// BackoffMax caps the exponential retry delay (default 2m).
	BackoffMax time.Duration
	// BreakerThreshold is the consecutive-failure count that trips the
	// circuit breaker (default 5); BreakerCooldown is how long it stays
	// open before half-opening on a probe (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed feeds the deterministic backoff jitter (default 1).
	Seed uint64

	// Observability and fault injection (all optional, nil-safe).
	Metrics  *obs.Registry
	Trace    *obs.Span
	Logger   *slog.Logger
	Health   *resilience.Health
	Injector *resilience.Injector

	// now is the clock (tests inject a fake; nil means time.Now).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.PollTimeout <= 0 {
		c.PollTimeout = 5 * time.Second
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ingestObs caches the subsystem's metric handles (nil registry = no-ops).
type ingestObs struct {
	polls        *obs.Counter // ingest.polls_total
	pollFailures *obs.Counter // ingest.poll_failures_total
	accepted     *obs.Counter // ingest.accepted_total
	duplicates   *obs.Counter // ingest.duplicates_total
	quarantined  *obs.Counter // ingest.quarantined_total
	replayed     *obs.Counter // ingest.replayed_total
	trips        *obs.Counter // ingest.breaker.trips_total
	rollbacks    *obs.Counter // ingest.rollbacks_total
	breakerState *obs.Gauge   // ingest.breaker.state (0 closed, 1 open, 2 half-open)
	journalLag   *obs.Gauge   // ingest.journal.lag (journaled - applied)
}

func newIngestObs(r *obs.Registry) ingestObs {
	if r == nil {
		return ingestObs{}
	}
	return ingestObs{
		polls:        r.Counter("ingest.polls_total"),
		pollFailures: r.Counter("ingest.poll_failures_total"),
		accepted:     r.Counter("ingest.accepted_total"),
		duplicates:   r.Counter("ingest.duplicates_total"),
		quarantined:  r.Counter("ingest.quarantined_total"),
		replayed:     r.Counter("ingest.replayed_total"),
		trips:        r.Counter("ingest.breaker.trips_total"),
		rollbacks:    r.Counter("ingest.rollbacks_total"),
		breakerState: r.Gauge("ingest.breaker.state"),
		journalLag:   r.Gauge("ingest.journal.lag"),
	}
}

// Status is the ingestion lifecycle document served at /v1/ingest.
type Status struct {
	Feed                string `json:"feed"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	BreakerTrips        uint64 `json:"breaker_trips"`
	Polls               uint64 `json:"polls"`
	PollFailures        uint64 `json:"poll_failures"`
	Accepted            uint64 `json:"accepted"`
	Duplicates          uint64 `json:"duplicates"`
	Quarantined         uint64 `json:"quarantined"`
	Replayed            uint64 `json:"replayed"`
	Rollbacks           uint64 `json:"rollbacks"`
	JournalSeq          uint64 `json:"journal_seq"`
	AppliedSeq          uint64 `json:"applied_seq"`
	JournalLag          uint64 `json:"journal_lag"`
	Generation          uint64 `json:"generation"`
	LastAdvisory        string `json:"last_advisory,omitempty"`
	LastError           string `json:"last_error,omitempty"`
}

// Poller is the continuous ingestion engine. Recover and Run mutate state
// from a single goroutine; Status may be called concurrently from HTTP
// handlers.
type Poller struct {
	cfg     Config
	tel     ingestObs
	lg      *slog.Logger
	swapper Swapper
	journal *Journal
	quar    *quarantine
	brk     *breaker
	bo      backoff

	recovered []Record        // journal records awaiting Recover
	seen      map[string]bool // "STORM#N" advisories already applied

	mu           sync.Mutex // guards the mutable status fields below
	polls        uint64
	pollFailures uint64
	accepted     uint64
	duplicates   uint64
	quarantined  uint64
	replayed     uint64
	rollbacks    uint64
	appliedSeq   uint64
	itemSeq      uint64 // accept sequence for item-level fault keys
	lastAdvisory string
	lastError    string
}

// NewPoller opens (or creates) the journal under cfg.JournalDir and builds
// the poller. The journal's valid prefix is held for Recover; call Recover
// before Run so the serving world reaches the pre-crash generation before
// new advisories stream in.
func NewPoller(cfg Config, sw Swapper) (*Poller, error) {
	cfg = cfg.withDefaults()
	if sw == nil {
		return nil, errors.New("ingest: nil swapper")
	}
	if cfg.JournalDir == "" {
		return nil, errors.New("ingest: JournalDir is required (the journal is the crash-safety anchor)")
	}
	j, recs, err := OpenJournal(cfg.JournalDir)
	if err != nil {
		return nil, err
	}
	q, err := newQuarantine(cfg.JournalDir)
	if err != nil {
		j.Close()
		return nil, err
	}
	p := &Poller{
		cfg:       cfg,
		tel:       newIngestObs(cfg.Metrics),
		lg:        obs.LoggerOrNop(cfg.Logger),
		swapper:   sw,
		journal:   j,
		quar:      q,
		brk:       newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		bo:        backoff{base: cfg.Interval, max: cfg.BackoffMax, seed: cfg.Seed},
		recovered: recs,
		seen:      make(map[string]bool),
	}
	p.publishGauges()
	return p, nil
}

// Close releases the journal.
func (p *Poller) Close() error { return p.journal.Close() }

// advKey identifies an advisory for dedupe: storm name plus advisory
// number.
func advKey(a *forecast.Advisory) string {
	return fmt.Sprintf("%s#%d", a.Storm, a.Number)
}

// Recover replays the journal's valid prefix through validate→swap,
// bringing the serving world to the exact generation the process reached
// before it crashed. Records that fail validation or whose swap fails are
// quarantined — deterministically, the same outcome they had (or would
// have had) pre-crash — and replay continues. It returns how many records
// were applied.
func (p *Poller) Recover() (int, error) {
	span := p.cfg.Trace.Child("ingest-recover")
	defer span.End()
	applied := 0
	for _, rec := range p.recovered {
		parseStart := time.Now()
		adv, err := forecast.ValidateAdvisory(rec.Text)
		parseDur := time.Since(parseStart)
		if err != nil {
			p.quarantineItem(rec.Text, fmt.Sprintf("replay seq %d: validate: %v", rec.Seq, err), err)
			continue
		}
		if p.seen[advKey(adv)] {
			p.count(&p.duplicates, p.tel.duplicates)
			continue
		}
		gen, err := p.applySwap(adv, rec.Seq, parseDur)
		if err != nil {
			p.quarantineItem(rec.Text, fmt.Sprintf("replay seq %d: swap: %v", rec.Seq, err), err)
			continue
		}
		p.seen[advKey(adv)] = true
		p.noteApplied(rec.Seq, adv, gen)
		p.count(&p.replayed, p.tel.replayed)
		applied++
	}
	span.SetAttr("records", len(p.recovered))
	span.SetAttr("applied", applied)
	if n := len(p.recovered); n > 0 {
		p.cfg.Health.Record("ingest", "journal replay: %d/%d records applied, generation %d",
			applied, n, p.swapper.Generation())
		p.lg.Info("journal replayed", "records", n, "applied", applied,
			"generation", p.swapper.Generation())
	}
	p.recovered = nil
	p.publishGauges()
	return applied, nil
}

// Run polls the feed until ctx is cancelled. It is the poller's only
// mutating goroutine; start it after Recover.
func (p *Poller) Run(ctx context.Context) error {
	if p.cfg.Source == nil {
		return errors.New("ingest: no feed source configured")
	}
	if len(p.recovered) > 0 {
		return errors.New("ingest: Run before Recover would re-apply journaled advisories out of order")
	}
	p.lg.Info("ingest poller started", "feed", p.cfg.Source.Name(),
		"interval", p.cfg.Interval, "journal", p.journal.Path())
	var attempt uint64
	for {
		timer := time.NewTimer(p.bo.Next())
		select {
		case <-ctx.Done():
			timer.Stop()
			p.lg.Info("ingest poller stopped")
			return nil
		case <-timer.C:
		}
		attempt++
		p.pollOnce(ctx, attempt)
	}
}

// pollOnce performs one poll attempt: breaker gate, timed fetch, then item
// processing. Feed-level failures feed the breaker and the backoff; item
// failures are handled per item and do not.
func (p *Poller) pollOnce(ctx context.Context, attempt uint64) {
	if !p.brk.Allow() {
		p.publishGauges()
		return
	}
	p.count(&p.polls, p.tel.polls)

	actx, cancel := context.WithTimeout(ctx, p.cfg.PollTimeout)
	items, err := p.cfg.Source.Poll(actx)
	cancel()
	if err == nil {
		err = p.cfg.Injector.ForcedError(resilience.PointIngestPoll, attempt)
	}
	if err != nil && ctx.Err() != nil {
		return // shutdown, not feed failure
	}
	if err != nil {
		p.count(&p.pollFailures, p.tel.pollFailures)
		p.setLastError(err)
		p.bo.Fail()
		if p.brk.Failure() {
			p.count(nil, p.tel.trips)
			_, fails, _ := p.brk.Snapshot()
			p.cfg.Health.Degrade("ingest", err, "feed breaker tripped after %d consecutive failures", fails)
			p.lg.Warn("feed breaker tripped", "failures", fails, "err", err.Error())
		} else {
			p.lg.Warn("feed poll failed", "attempt", attempt, "err", err.Error())
		}
		p.publishGauges()
		return
	}
	if st, _, _ := p.brk.Snapshot(); st != BreakerClosed {
		p.cfg.Health.Record("ingest", "feed recovered; breaker closing")
		p.lg.Info("feed recovered; breaker closing")
	}
	p.brk.Success()
	p.bo.OK()
	for _, text := range items {
		p.ingestOne(text)
	}
	p.publishGauges()
}

// ingestOne carries one raw feed item through validate → dedupe → journal
// → swap. Item-level failures quarantine the payload and never abort the
// poll loop.
func (p *Poller) ingestOne(text string) {
	p.mu.Lock()
	p.itemSeq++
	item := p.itemSeq
	p.mu.Unlock()

	text, dropped := p.cfg.Injector.Transform(resilience.PointIngestPoll, item, text)
	if dropped {
		return // the feed never delivered this item
	}
	parseStart := time.Now()
	adv, err := forecast.ValidateAdvisory(text)
	parseDur := time.Since(parseStart)
	if err != nil {
		p.quarantineItem(text, fmt.Sprintf("validate: %v", err), err)
		return
	}
	if p.seen[advKey(adv)] {
		p.count(&p.duplicates, p.tel.duplicates)
		return
	}

	// Journal before swap: once Append returns, the advisory survives any
	// crash, and boot-time Recover will finish what a killed process
	// started.
	if err := p.cfg.Injector.ForcedError(resilience.PointIngestJournal, p.journal.Seq()+1); err != nil {
		p.quarantineItem(text, fmt.Sprintf("journal: %v", err), err)
		return
	}
	seq, err := p.journal.Append(text)
	if err != nil {
		p.quarantineItem(text, fmt.Sprintf("journal: %v", err), err)
		return
	}

	gen, err := p.applySwap(adv, seq, parseDur)
	if err != nil {
		p.quarantineItem(text, fmt.Sprintf("swap (journal seq %d): %v", seq, err), err)
		return
	}
	p.seen[advKey(adv)] = true
	p.noteApplied(seq, adv, gen)
	p.count(&p.accepted, p.tel.accepted)
	p.lg.Info("advisory ingested", "storm", adv.Storm, "advisory", adv.Number,
		"journal_seq", seq, "generation", gen)
}

// applySwap is the panic-recovery guard around the snapshot swap, keyed by
// the advisory's journal sequence (so a replayed fault schedule fires
// identically at boot). A recovered panic becomes a typed DegradedError; a
// world that fails post-publish verification is rolled back by
// republishing the last good snapshot under a fresh generation.
func (p *Poller) applySwap(adv *forecast.Advisory, seq uint64, parseDur time.Duration) (gen uint64, err error) {
	before := p.swapper.Generation()
	defer func() {
		if r := recover(); r != nil {
			err = &resilience.DegradedError{Stage: "ingest-swap",
				Err: fmt.Errorf("swap panicked: %v", r)}
			if cur := p.swapper.Generation(); cur > before {
				// The panic escaped after publish: the published world is
				// suspect. Roll back.
				gen = p.revert(cur, err)
			} else {
				gen = cur
			}
			p.cfg.Health.Degrade("ingest", err, "swap for %s advisory %d panicked", adv.Storm, adv.Number)
		}
	}()
	if ierr := p.cfg.Injector.ForcedError(resilience.PointIngestSwap, seq); ierr != nil {
		return before, ierr
	}
	if ts, ok := p.swapper.(timedSwapper); ok {
		gen, err = ts.ApplyParsedTimed(adv, parseDur)
	} else {
		gen, err = p.swapper.ApplyParsed(adv)
	}
	if err != nil {
		return gen, err
	}
	// Post-publish verification hook: the injector can declare the
	// published world bad (modeling a semantic check failing after the
	// pointer moved), which must roll back rather than keep serving it.
	if verr := p.cfg.Injector.ForcedError(resilience.PointIngestSwap, seq+resilience.PostSwapKeyOffset); verr != nil {
		return p.revert(gen, verr), verr
	}
	return gen, nil
}

// revert rolls the serving world back from the suspect generation to the
// last good snapshot (republished under a fresh generation) and returns
// the generation now serving.
func (p *Poller) revert(fromGen uint64, cause error) uint64 {
	gen, err := p.swapper.RevertAdvisory(fromGen)
	if err != nil {
		p.cfg.Health.Fail("ingest", err, "rollback from generation %d failed", fromGen)
		p.lg.Error("rollback failed", "from_generation", fromGen, "err", err.Error())
		return gen
	}
	p.count(&p.rollbacks, p.tel.rollbacks)
	p.cfg.Health.Degrade("ingest", cause, "rolled back generation %d; serving last good world as generation %d", fromGen, gen)
	p.lg.Warn("swap rolled back", "bad_generation", fromGen, "generation", gen, "cause", cause.Error())
	return gen
}

// quarantineItem dead-letters one payload with its reason and records the
// event on every observability surface.
func (p *Poller) quarantineItem(text, reason string, cause error) {
	p.count(&p.quarantined, p.tel.quarantined)
	p.setLastError(cause)
	path, err := p.quar.Put(text, reason)
	if err != nil {
		p.cfg.Health.Fail("ingest", err, "quarantine write failed (%s)", reason)
		p.lg.Error("quarantine write failed", "reason", reason, "err", err.Error())
		return
	}
	p.cfg.Health.Degrade("ingest", cause, "advisory quarantined: %s", reason)
	p.lg.Warn("advisory quarantined", "reason", reason, "path", path)
}

// count bumps a status counter (addr may be nil) and its metric mirror.
func (p *Poller) count(addr *uint64, c *obs.Counter) {
	if addr != nil {
		p.mu.Lock()
		*addr++
		p.mu.Unlock()
	}
	c.Inc()
}

func (p *Poller) setLastError(err error) {
	p.mu.Lock()
	p.lastError = err.Error()
	p.mu.Unlock()
}

func (p *Poller) noteApplied(seq uint64, adv *forecast.Advisory, gen uint64) {
	p.mu.Lock()
	p.appliedSeq = seq
	p.lastAdvisory = fmt.Sprintf("%s advisory %d (generation %d)", adv.Storm, adv.Number, gen)
	p.mu.Unlock()
	p.publishGauges()
}

// publishGauges refreshes the breaker-state and journal-lag gauges.
func (p *Poller) publishGauges() {
	st, _, _ := p.brk.Snapshot()
	p.tel.breakerState.Set(float64(st))
	p.mu.Lock()
	lag := p.journal.Seq() - p.appliedSeq
	p.mu.Unlock()
	p.tel.journalLag.Set(float64(lag))
}

// Status snapshots the ingestion lifecycle for /v1/ingest.
func (p *Poller) Status() Status {
	st, fails, trips := p.brk.Snapshot()
	p.mu.Lock()
	defer p.mu.Unlock()
	feed := "(none)"
	if p.cfg.Source != nil {
		feed = p.cfg.Source.Name()
	}
	return Status{
		Feed:                feed,
		Breaker:             st.String(),
		ConsecutiveFailures: fails,
		BreakerTrips:        trips,
		Polls:               p.polls,
		PollFailures:        p.pollFailures,
		Accepted:            p.accepted,
		Duplicates:          p.duplicates,
		Quarantined:         p.quarantined,
		Replayed:            p.replayed,
		Rollbacks:           p.rollbacks,
		JournalSeq:          p.journal.Seq(),
		AppliedSeq:          p.appliedSeq,
		JournalLag:          p.journal.Seq() - p.appliedSeq,
		Generation:          p.swapper.Generation(),
		LastAdvisory:        p.lastAdvisory,
		LastError:           p.lastError,
	}
}
