package ingest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// quarantineDirName is the dead-letter directory inside the journal dir.
const quarantineDirName = "quarantine"

// quarantine is the dead-letter store for advisories the pipeline refused:
// validation failures, journal-append failures, and swaps that errored or
// panicked. Each payload lands as <sha256-prefix>.txt next to a
// <sha256-prefix>.reason file holding the failure reason, so an operator
// can inspect, fix, and re-feed. Content-addressed names make quarantining
// idempotent: the same corrupt bulletin re-encountered after a restart
// overwrites its own entry instead of accumulating duplicates.
type quarantine struct {
	dir string
}

func newQuarantine(journalDir string) (*quarantine, error) {
	dir := filepath.Join(journalDir, quarantineDirName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: quarantine dir: %w", err)
	}
	return &quarantine{dir: dir}, nil
}

// Put stores one refused payload with its reason and returns the payload
// file's path. Quarantine failures are returned, not fatal: losing a
// dead-letter copy must never stop ingestion.
func (q *quarantine) Put(text, reason string) (string, error) {
	sum := sha256.Sum256([]byte(text))
	name := hex.EncodeToString(sum[:8])
	path := filepath.Join(q.dir, name+".txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return "", fmt.Errorf("ingest: quarantine payload: %w", err)
	}
	if err := os.WriteFile(filepath.Join(q.dir, name+".reason"), []byte(reason+"\n"), 0o644); err != nil {
		return "", fmt.Errorf("ingest: quarantine reason: %w", err)
	}
	return path, nil
}

// Len counts quarantined payloads on disk.
func (q *quarantine) Len() (int, error) {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".txt" {
			n++
		}
	}
	return n, nil
}
