package ingest

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b := newBreaker(3, 10*time.Second, clk.now)

	// Closed: failures below the threshold don't trip.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker blocked poll %d", i)
		}
		if b.Failure() {
			t.Fatalf("failure %d tripped below threshold", i+1)
		}
	}
	if st, fails, trips := b.Snapshot(); st != BreakerClosed || fails != 2 || trips != 0 {
		t.Fatalf("after 2 failures: %v/%d/%d", st, fails, trips)
	}

	// The threshold'th consecutive failure trips it.
	if !b.Failure() {
		t.Fatal("threshold failure did not trip")
	}
	if st, _, trips := b.Snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("after trip: %v trips=%d", st, trips)
	}

	// Open: polls blocked until the cooldown elapses.
	if b.Allow() {
		t.Fatal("open breaker allowed a poll")
	}
	clk.advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker allowed a poll 1s before cooldown")
	}
	clk.advance(time.Second)

	// Cooldown elapsed: exactly one probe gets through.
	if !b.Allow() {
		t.Fatal("half-open transition blocked the probe")
	}
	if st, _, _ := b.Snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state after probe admitted: %v", st)
	}
	if b.Allow() {
		t.Fatal("second caller admitted while probe in flight")
	}

	// Failed probe re-opens (and counts as a trip) with a fresh cooldown.
	if !b.Failure() {
		t.Fatal("failed probe did not re-open")
	}
	if st, _, trips := b.Snapshot(); st != BreakerOpen || trips != 2 {
		t.Fatalf("after failed probe: %v trips=%d", st, trips)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a poll immediately")
	}

	// Successful probe closes and resets the streak.
	clk.advance(10 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe blocked")
	}
	b.Success()
	if st, fails, _ := b.Snapshot(); st != BreakerClosed || fails != 0 {
		t.Fatalf("after recovery: %v fails=%d", st, fails)
	}
	// A single new failure must not trip — the streak restarted.
	if b.Failure() {
		t.Fatal("first failure after recovery tripped")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0, nil)
	if b.threshold != 5 || b.cooldown != 30*time.Second || b.now == nil {
		t.Fatalf("defaults: threshold=%d cooldown=%v", b.threshold, b.cooldown)
	}
}

func TestBackoffGrowthCapAndJitter(t *testing.T) {
	bo := &backoff{base: 100 * time.Millisecond, max: 2 * time.Second, seed: 42}

	// Healthy: the base interval, no jitter.
	if d := bo.Next(); d != 100*time.Millisecond {
		t.Fatalf("healthy delay %v", d)
	}

	// Each failure doubles the envelope; jitter keeps the delay in
	// [envelope/2, envelope].
	envelope := 100 * time.Millisecond
	for i := 1; i <= 8; i++ {
		bo.Fail()
		d := bo.Next()
		if envelope < 2*time.Second {
			if d < envelope/2 || d > envelope {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, d, envelope/2, envelope)
			}
		} else {
			// Capped: the envelope stops growing.
			if d < time.Second || d > 2*time.Second {
				t.Fatalf("attempt %d: capped delay %v outside [1s, 2s]", i, d)
			}
		}
		if envelope < 2*time.Second {
			envelope *= 2
		}
	}

	// Determinism: the same (seed, attempt) always yields the same delay.
	a := &backoff{base: 100 * time.Millisecond, max: 2 * time.Second, seed: 42, attempt: 3}
	b := &backoff{base: 100 * time.Millisecond, max: 2 * time.Second, seed: 42, attempt: 3}
	if a.Next() != b.Next() {
		t.Fatal("same seed+attempt gave different delays")
	}
	c := &backoff{base: 100 * time.Millisecond, max: 2 * time.Second, seed: 43, attempt: 3}
	if a.Next() == c.Next() {
		t.Fatal("different seeds gave identical jitter (suspicious)")
	}

	// Recovery resets to the base interval.
	bo.OK()
	if d := bo.Next(); d != 100*time.Millisecond {
		t.Fatalf("post-recovery delay %v", d)
	}
}
