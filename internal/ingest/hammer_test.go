package ingest

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"riskroute/internal/obs"
	"riskroute/internal/resilience"
)

// TestIngestFaultEndurance is the subsystem's endurance hammer: a live HTTP
// feed that opens with a burst of 5xx responses and a hung (timing-out)
// request, then streams the Sandy corpus with two advisories corrupted in
// flight by the resilience injector, while a status reader hammers Status
// concurrently (the -race build is the point). The run must end with
//
//   - the breaker recovered (closed) after having tripped,
//   - every corrupt advisory quarantined with a reason on disk,
//   - zero torn generations (history strictly +1, no gaps or repeats),
//   - every delivered advisory accounted for: accepted + quarantined = fed.
func TestIngestFaultEndurance(t *testing.T) {
	texts := sandyTexts(t, 8)
	var reqs atomic.Int64
	var next atomic.Int64
	feed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n := reqs.Add(1); {
		case n <= 2 || n == 4 || n == 5:
			// 5xx burst: enough consecutive failures to trip the breaker.
			http.Error(w, "upstream exploded", http.StatusBadGateway)
		case n == 3:
			// Hang past the poller's per-attempt timeout.
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
		default:
			i := next.Add(1) - 1
			if int(i) < len(texts) {
				w.Write([]byte(texts[i]))
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer feed.Close()

	inj := resilience.NewInjector(7)
	// Corrupt advisories 2 and 5 in flight (item accept sequence keys).
	inj.EnableKeys(resilience.PointIngestPoll, resilience.Corrupt, 2, 5)

	jdir := t.TempDir()
	sw := &fakeSwapper{}
	reg := obs.NewRegistry()
	p := newTestPoller(t, Config{
		Source:           NewHTTPSource(feed.URL, feed.Client()),
		JournalDir:       jdir,
		Interval:         time.Millisecond,
		PollTimeout:      25 * time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Millisecond,
		Injector:         inj,
		Metrics:          reg,
	}, sw)
	mustRecover(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.Run(ctx) }()
	// Concurrent status reader: races against the run loop's counters,
	// journal atomics, and breaker state.
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			_ = p.Status()
			time.Sleep(time.Millisecond)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	var st Status
	for {
		st = p.Status()
		if st.Accepted+st.Quarantined == uint64(len(texts)) && st.Breaker == "closed" {
			break
		}
		if time.Now().After(deadline) {
			cancel()
			wg.Wait()
			t.Fatalf("hammer never converged: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	st = p.Status()

	// The fault window must actually have exercised the breaker.
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if st.PollFailures < 3 {
		t.Fatalf("fault window produced only %d poll failures", st.PollFailures)
	}
	// Both corrupted advisories were quarantined with reasons on disk.
	if st.Quarantined != 2 {
		t.Fatalf("quarantined %d, want 2: %+v", st.Quarantined, st)
	}
	assertReasonsOnDisk(t, jdir, int(st.Quarantined))
	// Everything that survived corruption was applied exactly once, in
	// strictly monotonic generations with no gaps — no torn worlds.
	gens, applied, reverts := sw.snapshot()
	if reverts != 0 {
		t.Fatalf("unexpected reverts: %d", reverts)
	}
	assertMonotonic(t, gens)
	if len(applied) != int(st.Accepted) || st.Accepted != uint64(len(texts))-st.Quarantined {
		t.Fatalf("applied=%d accepted=%d fed=%d", len(applied), st.Accepted, len(texts))
	}
	if st.JournalLag != 0 || st.JournalSeq != st.Accepted {
		t.Fatalf("journal out of step: %+v", st)
	}
	// Metric mirrors moved with the counters.
	snap := reg.Snapshot()
	if snap.Counters["ingest.breaker.trips_total"] == 0 {
		t.Fatal("trip counter metric never incremented")
	}
	if got := snap.Counters["ingest.accepted_total"]; got != int64(st.Accepted) {
		t.Fatalf("accepted metric %d != %d", got, st.Accepted)
	}
}

// assertReasonsOnDisk fails unless the quarantine directory holds exactly n
// payloads, each with a non-empty .reason companion.
func assertReasonsOnDisk(t *testing.T, journalDir string, n int) {
	t.Helper()
	dir := filepath.Join(journalDir, quarantineDirName)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	payloads := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".txt" {
			continue
		}
		payloads++
		reason, err := os.ReadFile(filepath.Join(dir, e.Name()[:len(e.Name())-4]+".reason"))
		if err != nil {
			t.Fatalf("%s has no reason file: %v", e.Name(), err)
		}
		if len(reason) == 0 {
			t.Fatalf("%s has an empty reason", e.Name())
		}
	}
	if payloads != n {
		t.Fatalf("%d quarantined payloads on disk, want %d", payloads, n)
	}
}
