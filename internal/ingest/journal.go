package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// The write-ahead journal is the crash-safety anchor of continuous
// ingestion: every advisory that clears validation is appended — and
// fsynced — here *before* the snapshot swap is attempted, so a process
// killed at any instant recovers to the exact pre-crash generation by
// replaying the journal at boot.
//
// # On-disk format
//
// The file opens with an 8-byte header: the magic "RRWJ" followed by a
// little-endian uint32 format version. Each record is then
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32C of the payload (Castagnoli, little-endian)
//	bytes   payload
//
// where the payload is a little-endian uint64 sequence number followed by
// the advisory text. Appends write the whole record with one Write call and
// fsync before returning, so the tail of a crashed process is either absent
// or torn — never silently half-applied.
//
// # Recovery semantics
//
// Replay fails closed: records are accepted only while length, CRC, and
// sequence monotonicity all hold. The first violation ends the valid
// prefix. A *torn tail* (the file ends mid-record — the expected result of
// kill -9 during an append) is healed by truncating back to the last good
// record; a *corrupt interior* (a record whose CRC fails with more data
// after it, or a broken header) is an integrity error surfaced to the
// caller, because silently dropping acknowledged records would un-apply
// advisories the daemon already served.

const (
	journalMagic   = "RRWJ"
	journalVersion = 1
	journalHeader  = 8 // magic + version
	recordHeader   = 8 // length + crc
	// maxRecordBytes bounds one journal record; it mirrors the serving
	// daemon's advisory body cap plus the sequence prefix, so a corrupted
	// length field cannot trigger a giant allocation.
	maxRecordBytes = 1<<20 + 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled advisory.
type Record struct {
	Seq  uint64
	Text string
}

// encodeRecord appends rec's wire form to buf and returns the result.
func encodeRecord(buf []byte, rec Record) []byte {
	payload := len(rec.Text) + 8
	var hdr [recordHeader + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload))
	binary.LittleEndian.PutUint64(hdr[recordHeader:], rec.Seq)
	buf = append(buf, hdr[:recordHeader]...)
	crcAt := len(buf) - 4 // patched after the payload is in place
	buf = append(buf, hdr[recordHeader:]...)
	buf = append(buf, rec.Text...)
	crc := crc32.Checksum(buf[len(buf)-payload:], crcTable)
	binary.LittleEndian.PutUint32(buf[crcAt:crcAt+4], crc)
	return buf
}

// decodeRecords walks data (a journal file image without its file header)
// and returns every valid record plus the byte offset where validity ends.
// torn reports whether the remainder looks like a torn tail (truncated
// final record) as opposed to a clean end; corrupt reports a CRC or
// structural violation with further data after it. torn and corrupt are
// mutually exclusive; when both are false the whole input parsed.
func decodeRecords(data []byte) (recs []Record, valid int, torn, corrupt bool) {
	off := 0
	var lastSeq uint64
	for {
		if off == len(data) {
			return recs, off, false, false
		}
		if len(data)-off < recordHeader {
			return recs, off, true, false
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length < 8 || length > maxRecordBytes {
			// A nonsense length field: with a full header present this is
			// corruption, not truncation.
			return recs, off, false, true
		}
		if len(data)-off-recordHeader < length {
			return recs, off, true, false
		}
		payload := data[off+recordHeader : off+recordHeader+length]
		if crc32.Checksum(payload, crcTable) != crc {
			// Whether this is a torn tail or interior corruption depends on
			// whether anything follows: a final half-written record is
			// expected after kill -9, garbage with more records after it is
			// not.
			tail := off+recordHeader+length == len(data)
			return recs, off, tail, !tail
		}
		seq := binary.LittleEndian.Uint64(payload[:8])
		if len(recs) > 0 && seq <= lastSeq {
			return recs, off, false, true
		}
		lastSeq = seq
		recs = append(recs, Record{Seq: seq, Text: string(payload[8:])})
		off += recordHeader + length
	}
}

// Journal is an append-only advisory write-ahead log. Appends are
// single-writer (the Poller serializes them); Seq and Records are safe to
// read concurrently (the status endpoint does).
type Journal struct {
	path string
	f    *os.File
	seq  atomic.Uint64 // last sequence appended (or recovered)
	recs atomic.Int64  // records currently in the file
}

// journalName is the journal's file name inside the journal directory.
const journalName = "advisories.wal"

// OpenJournal opens (creating if absent) the advisory journal in dir and
// replays its contents: the returned records are the valid prefix, in
// order. A torn tail is truncated away; interior corruption or a bad
// header is an error. The journal is left positioned for appends.
func OpenJournal(dir string) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("ingest: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open journal: %w", err)
	}
	j := &Journal{path: path, f: f}

	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: stat journal: %w", err)
	}
	if info.Size() == 0 {
		var hdr [journalHeader]byte
		copy(hdr[:4], journalMagic)
		binary.LittleEndian.PutUint32(hdr[4:], journalVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: write journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: sync journal header: %w", err)
		}
		return j, nil, nil
	}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: read journal: %w", err)
	}
	if len(data) < journalHeader || string(data[:4]) != journalMagic {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: %s is not an advisory journal (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != journalVersion {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: journal version %d, this build reads %d", v, journalVersion)
	}
	recs, valid, torn, corrupt := decodeRecords(data[journalHeader:])
	if corrupt {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: journal %s corrupt at offset %d (%d records intact); refusing to drop acknowledged advisories — move the file aside to reset",
			path, journalHeader+valid, len(recs))
	}
	end := int64(journalHeader + valid)
	if torn {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: truncate torn journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: sync truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: seek journal end: %w", err)
	}
	if n := len(recs); n > 0 {
		j.seq.Store(recs[n-1].Seq)
	}
	j.recs.Store(int64(len(recs)))
	return j, recs, nil
}

// Append durably writes one advisory and returns its sequence number. The
// record is fsynced before Append returns: once a sequence number is handed
// out, the advisory survives any crash.
func (j *Journal) Append(text string) (uint64, error) {
	if len(text)+8 > maxRecordBytes {
		return 0, fmt.Errorf("ingest: advisory of %d bytes exceeds journal record cap", len(text))
	}
	seq := j.seq.Load() + 1
	buf := encodeRecord(nil, Record{Seq: seq, Text: text})
	if _, err := j.f.Write(buf); err != nil {
		return 0, fmt.Errorf("ingest: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return 0, fmt.Errorf("ingest: journal sync: %w", err)
	}
	j.seq.Store(seq)
	j.recs.Add(1)
	return seq, nil
}

// Seq returns the last sequence number appended or recovered (0 when empty).
func (j *Journal) Seq() uint64 { return j.seq.Load() }

// Records returns how many records the journal currently holds.
func (j *Journal) Records() int { return int(j.recs.Load()) }

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }
