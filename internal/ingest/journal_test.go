package ingest

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, recs
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	texts := []string{"first advisory", "second\nwith newline", strings.Repeat("x", 10_000)}
	for i, text := range texts {
		seq, err := j.Append(text)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
	if j.Records() != len(texts) || j.Seq() != uint64(len(texts)) {
		t.Fatalf("Records=%d Seq=%d after %d appends", j.Records(), j.Seq(), len(texts))
	}
	j.Close()

	j2, recs := mustOpen(t, dir)
	defer j2.Close()
	if len(recs) != len(texts) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(texts))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Text != texts[i] {
			t.Fatalf("record %d: seq=%d text=%q", i, rec.Seq, rec.Text)
		}
	}
	// Appends continue the recovered sequence.
	seq, err := j2.Append("fourth")
	if err != nil || seq != 4 {
		t.Fatalf("post-recovery append: seq=%d err=%v", seq, err)
	}
}

// TestJournalTornTail truncates the file mid-record at every possible
// byte boundary of the final record: recovery must always return the
// intact prefix, heal the file, and accept new appends.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	if _, err := j.Append("intact record one"); err != nil {
		t.Fatal(err)
	}
	intactSize := fileSize(t, j.Path())
	if _, err := j.Append("the record a crash tears"); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	for cut := intactSize + 1; cut < int64(len(full)); cut++ {
		path := filepath.Join(t.TempDir(), journalName)
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := OpenJournal(filepath.Dir(path))
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0].Text != "intact record one" {
			t.Fatalf("cut at %d: recovered %d records", cut, len(recs))
		}
		if got := fileSize(t, path); got != intactSize {
			t.Fatalf("cut at %d: torn tail not truncated (size %d, want %d)", cut, got, intactSize)
		}
		if seq, err := j2.Append("after recovery"); err != nil || seq != 2 {
			t.Fatalf("cut at %d: append after recovery: seq=%d err=%v", cut, seq, err)
		}
		j2.Close()
	}
}

// TestJournalInteriorCorruption flips one byte of the FIRST record while a
// later record follows: that is not a torn tail, and recovery must refuse
// rather than silently un-apply acknowledged advisories.
func TestJournalInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	firstEnd := int64(0)
	if _, err := j.Append("record one"); err != nil {
		t.Fatal(err)
	}
	firstEnd = fileSize(t, j.Path())
	if _, err := j.Append("record two"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of record one (past its 8-byte record header and
	// 8-byte seq, inside the text).
	data[journalHeader+recordHeader+8] ^= 0xff
	_ = firstEnd
	if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir); err == nil {
		t.Fatal("interior corruption recovered silently")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestJournalBadHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte("GARBAGE FILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err=%v", err)
	}

	dir2 := t.TempDir()
	hdr := []byte(journalMagic)
	hdr = append(hdr, 99, 0, 0, 0) // future version
	if err := os.WriteFile(filepath.Join(dir2, journalName), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(dir2); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: err=%v", err)
	}
}

func TestJournalOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()
	if _, err := j.Append(strings.Repeat("x", maxRecordBytes)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if j.Seq() != 0 {
		t.Fatalf("failed append advanced seq to %d", j.Seq())
	}
}

// TestDecodeRecordsSeqRegression pins that a sequence number going
// backward (impossible from Append, possible from tampering) ends the
// valid prefix as corruption.
func TestDecodeRecordsSeqRegression(t *testing.T) {
	var buf []byte
	buf = encodeRecord(buf, Record{Seq: 5, Text: "five"})
	buf = encodeRecord(buf, Record{Seq: 4, Text: "four"})
	recs, _, torn, corrupt := decodeRecords(buf)
	if len(recs) != 1 || torn || !corrupt {
		t.Fatalf("recs=%d torn=%v corrupt=%v", len(recs), torn, corrupt)
	}
}

func TestEncodeDecodeEmptyAndBoundary(t *testing.T) {
	// Empty text is legal (an empty advisory would fail validation far
	// before the journal, but the codec must not care).
	var buf []byte
	buf = encodeRecord(buf, Record{Seq: 1, Text: ""})
	recs, valid, torn, corrupt := decodeRecords(buf)
	if len(recs) != 1 || valid != len(buf) || torn || corrupt || recs[0].Text != "" {
		t.Fatalf("empty-text record: recs=%v valid=%d torn=%v corrupt=%v", recs, valid, torn, corrupt)
	}
	// A record header shorter than 8 bytes is a torn tail, not corruption.
	recs, _, torn, corrupt = decodeRecords(buf[:3])
	if len(recs) != 0 || !torn || corrupt {
		t.Fatalf("3-byte fragment: recs=%d torn=%v corrupt=%v", len(recs), torn, corrupt)
	}
	if !bytes.Equal(encodeRecord(nil, Record{Seq: 1, Text: ""}), buf) {
		t.Fatal("encodeRecord not deterministic")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}
