package ingest

import (
	"math"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the feed is healthy; every poll proceeds.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures tripped the breaker; polls are
	// skipped until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe poll is in
	// flight. Success closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a classic three-state circuit breaker over the feed: it trips
// after Threshold consecutive poll failures, stays open for Cooldown, then
// half-opens to let a single probe through. The zero-value clock is
// time.Now; tests inject a fake. All methods are concurrency-safe.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed / half-open
	openedAt time.Time
	trips    uint64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a poll attempt may proceed, transitioning
// Open→HalfOpen when the cooldown has elapsed. In HalfOpen only the call
// that performed the transition proceeds; the breaker stays half-open until
// that probe reports back.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // HalfOpen: a probe is already out
		return false
	}
}

// Success reports a successful poll: any state returns to Closed and the
// failure streak resets.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
}

// Failure reports a failed poll. It returns true when this failure tripped
// the breaker (Closed→Open on the threshold'th consecutive failure, or a
// failed HalfOpen probe re-opening it).
func (b *breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
		return true
	case BreakerClosed:
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
			return true
		}
	}
	return false
}

// Snapshot returns the state, consecutive-failure count, and lifetime trip
// count under one lock acquisition.
func (b *breaker) Snapshot() (BreakerState, int, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails, b.trips
}

// backoff computes the delay before the next poll attempt: the base
// interval while healthy, exponential with deterministic jitter after
// failures, capped at max. Jitter is a pure function of (seed, attempt), so
// a replayed fault schedule waits identically — the same determinism rule
// the resilience injector follows.
type backoff struct {
	base, max time.Duration
	seed      uint64
	attempt   int // consecutive failures
}

// Next returns the current delay and the failure streak it reflects.
func (bo *backoff) Next() time.Duration {
	if bo.attempt == 0 {
		return bo.base
	}
	exp := float64(bo.base) * math.Pow(2, float64(bo.attempt-1))
	capped := float64(bo.max)
	if exp > capped {
		exp = capped
	}
	// Full jitter in [exp/2, exp], deterministic in (seed, attempt).
	u := float64(mix64(bo.seed^uint64(bo.attempt))) / math.MaxUint64
	return time.Duration(exp/2 + exp/2*u)
}

// Fail advances the failure streak; OK resets it.
func (bo *backoff) Fail() { bo.attempt++ }
func (bo *backoff) OK()   { bo.attempt = 0 }

// mix64 is the SplitMix64 finalizer (same mixer the resilience injector
// uses) — enough to decorrelate jitter across attempts.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
