package ingest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"riskroute/internal/datasets"
	"riskroute/internal/forecast"
	"riskroute/internal/resilience"
)

// fakeSwapper implements Swapper in memory and records every generation it
// ever published, so tests can assert monotonicity and apply order without
// building a serving world.
type fakeSwapper struct {
	mu       sync.Mutex
	gen      uint64
	applied  []string      // advisory keys in publish order
	history  []uint64      // every generation ever published
	failNth  map[int]error // 1-based ApplyParsed call → error before publish
	panicNth map[int]bool  // 1-based ApplyParsed call → panic before publish
	panicPub map[int]bool  // 1-based ApplyParsed call → publish, then panic
	calls    int
	reverts  int
}

func (f *fakeSwapper) ApplyParsed(adv *forecast.Advisory) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if err := f.failNth[f.calls]; err != nil {
		return f.gen, err
	}
	if f.panicNth[f.calls] {
		panic(fmt.Sprintf("injected pre-publish panic on call %d", f.calls))
	}
	f.gen++
	f.history = append(f.history, f.gen)
	f.applied = append(f.applied, advKey(adv))
	if f.panicPub[f.calls] {
		panic(fmt.Sprintf("injected post-publish panic on call %d", f.calls))
	}
	return f.gen, nil
}

func (f *fakeSwapper) RevertAdvisory(fromGen uint64) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fromGen != f.gen {
		return f.gen, fmt.Errorf("revert from generation %d but serving %d", fromGen, f.gen)
	}
	f.gen++
	f.history = append(f.history, f.gen)
	if n := len(f.applied); n > 0 {
		f.applied = f.applied[:n-1]
	}
	f.reverts++
	return f.gen, nil
}

func (f *fakeSwapper) Generation() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gen
}

func (f *fakeSwapper) snapshot() (gens []uint64, applied []string, reverts int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.history...), append([]string(nil), f.applied...), f.reverts
}

// scriptSource scripts Poll behavior per call.
type scriptSource struct {
	name string
	fn   func(ctx context.Context) ([]string, error)
}

func (s *scriptSource) Poll(ctx context.Context) ([]string, error) { return s.fn(ctx) }
func (s *scriptSource) Name() string                               { return s.name }

// sandyTexts returns the first n advisories of the embedded Sandy corpus.
func sandyTexts(t *testing.T, n int) []string {
	t.Helper()
	texts := forecast.GenerateCorpus(datasets.HurricaneByName("Sandy"))
	if len(texts) < n {
		t.Fatalf("Sandy corpus has %d advisories, need %d", len(texts), n)
	}
	return texts[:n]
}

// writeFeedDir materializes texts as a lexicographically ordered feed dir.
func writeFeedDir(t *testing.T, texts []string) string {
	t.Helper()
	dir := t.TempDir()
	for i, text := range texts {
		name := fmt.Sprintf("adv-%03d.txt", i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func newTestPoller(t *testing.T, cfg Config, sw Swapper) *Poller {
	t.Helper()
	if cfg.JournalDir == "" {
		cfg.JournalDir = t.TempDir()
	}
	p, err := NewPoller(cfg, sw)
	if err != nil {
		t.Fatalf("NewPoller: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func mustRecover(t *testing.T, p *Poller) int {
	t.Helper()
	n, err := p.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return n
}

func TestPollerIngestFlow(t *testing.T) {
	texts := sandyTexts(t, 3)
	feed := writeFeedDir(t, texts)
	sw := &fakeSwapper{}
	p := newTestPoller(t, Config{Source: NewDirSource(feed)}, sw)
	if n := mustRecover(t, p); n != 0 {
		t.Fatalf("fresh journal replayed %d", n)
	}

	p.pollOnce(context.Background(), 1)

	st := p.Status()
	if st.Accepted != 3 || st.Quarantined != 0 || st.Duplicates != 0 {
		t.Fatalf("status after poll: %+v", st)
	}
	if st.JournalSeq != 3 || st.AppliedSeq != 3 || st.JournalLag != 0 || st.Generation != 3 {
		t.Fatalf("seq/gen after poll: %+v", st)
	}
	gens, applied, _ := sw.snapshot()
	if len(applied) != 3 {
		t.Fatalf("applied %d advisories", len(applied))
	}
	for i, text := range texts {
		adv, err := forecast.ParseAdvisory(text)
		if err != nil {
			t.Fatal(err)
		}
		if applied[i] != advKey(adv) {
			t.Fatalf("apply order: got %v", applied)
		}
	}
	assertMonotonic(t, gens)

	// A second poll delivers nothing new and changes nothing.
	p.pollOnce(context.Background(), 2)
	if st := p.Status(); st.Accepted != 3 || st.Duplicates != 0 || st.Polls != 2 {
		t.Fatalf("status after idle poll: %+v", st)
	}
}

func TestPollerDedupe(t *testing.T) {
	texts := sandyTexts(t, 1)
	// The same bulletin delivered under two different file names: one swap.
	feed := writeFeedDir(t, []string{texts[0], texts[0]})
	sw := &fakeSwapper{}
	p := newTestPoller(t, Config{Source: NewDirSource(feed)}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	st := p.Status()
	if st.Accepted != 1 || st.Duplicates != 1 {
		t.Fatalf("dedupe: %+v", st)
	}
	if st.JournalSeq != 1 {
		t.Fatalf("duplicate reached the journal: seq %d", st.JournalSeq)
	}
	if sw.Generation() != 1 {
		t.Fatalf("duplicate swapped: generation %d", sw.Generation())
	}
}

func TestPollerValidationQuarantine(t *testing.T) {
	texts := sandyTexts(t, 1)
	feed := writeFeedDir(t, []string{"THIS IS NOT A BULLETIN", texts[0]})
	sw := &fakeSwapper{}
	jdir := t.TempDir()
	p := newTestPoller(t, Config{Source: NewDirSource(feed), JournalDir: jdir}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	st := p.Status()
	if st.Accepted != 1 || st.Quarantined != 1 {
		t.Fatalf("quarantine: %+v", st)
	}
	// The invalid payload never touched the journal.
	if st.JournalSeq != 1 {
		t.Fatalf("journal seq %d, want 1", st.JournalSeq)
	}
	assertQuarantined(t, jdir, "THIS IS NOT A BULLETIN", "validate:")
	if st.LastError == "" {
		t.Fatal("quarantine left no last_error")
	}
}

// TestPollerJournalBeforeSwap pins the ordering contract: an advisory whose
// swap fails is already durable in the journal, so a restart retries it.
func TestPollerJournalBeforeSwap(t *testing.T) {
	texts := sandyTexts(t, 1)
	feed := writeFeedDir(t, texts)
	jdir := t.TempDir()
	sw := &fakeSwapper{failNth: map[int]error{1: errors.New("rebuild exploded")}}
	p := newTestPoller(t, Config{Source: NewDirSource(feed), JournalDir: jdir}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	st := p.Status()
	if st.Accepted != 0 || st.Quarantined != 1 {
		t.Fatalf("failed swap: %+v", st)
	}
	if st.JournalSeq != 1 {
		t.Fatal("advisory not journaled before the swap attempt")
	}
	assertQuarantined(t, jdir, texts[0], "rebuild exploded")
	p.Close()

	// Restart: the journaled advisory is retried and lands this time.
	sw2 := &fakeSwapper{}
	p2 := newTestPoller(t, Config{JournalDir: jdir}, sw2)
	if n := mustRecover(t, p2); n != 1 {
		t.Fatalf("replay applied %d records, want 1", n)
	}
	if sw2.Generation() != 1 {
		t.Fatalf("post-restart generation %d", sw2.Generation())
	}
	if st := p2.Status(); st.Replayed != 1 {
		t.Fatalf("replayed counter: %+v", st)
	}
}

func TestPollerSwapPanicQuarantines(t *testing.T) {
	texts := sandyTexts(t, 2)
	feed := writeFeedDir(t, texts)
	jdir := t.TempDir()
	sw := &fakeSwapper{panicNth: map[int]bool{1: true}}
	p := newTestPoller(t, Config{Source: NewDirSource(feed), JournalDir: jdir}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	// Advisory 1 panicked pre-publish: quarantined, no generation consumed,
	// and the poll loop survived to apply advisory 2.
	st := p.Status()
	if st.Accepted != 1 || st.Quarantined != 1 {
		t.Fatalf("panic handling: %+v", st)
	}
	if sw.Generation() != 1 {
		t.Fatalf("generation %d after one good swap", sw.Generation())
	}
	assertQuarantined(t, jdir, texts[0], "panicked")
	if !strings.Contains(st.LastError, "degraded") && !strings.Contains(st.LastError, "panic") {
		t.Fatalf("last_error %q does not surface the panic", st.LastError)
	}
	if _, _, reverts := sw.snapshot(); reverts != 0 {
		t.Fatalf("pre-publish panic triggered %d reverts", reverts)
	}
}

// TestPollerPostPublishPanicRollsBack covers a panic that escapes AFTER the
// pointer moved: the published world is suspect and must be reverted.
func TestPollerPostPublishPanicRollsBack(t *testing.T) {
	texts := sandyTexts(t, 1)
	feed := writeFeedDir(t, texts)
	sw := &fakeSwapper{panicPub: map[int]bool{1: true}}
	p := newTestPoller(t, Config{Source: NewDirSource(feed)}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	gens, applied, reverts := sw.snapshot()
	if reverts != 1 {
		t.Fatalf("reverts=%d", reverts)
	}
	if len(applied) != 0 {
		t.Fatalf("reverted advisory still applied: %v", applied)
	}
	assertMonotonic(t, gens)
	if sw.Generation() != 2 {
		t.Fatalf("rollback must land on a FRESH generation, got %d", sw.Generation())
	}
	if st := p.Status(); st.Rollbacks != 1 || st.Quarantined != 1 {
		t.Fatalf("rollback status: %+v", st)
	}
}

// TestPollerPostSwapVerificationRollback drives the rollback path through
// the resilience injector's post-publish key space.
func TestPollerPostSwapVerificationRollback(t *testing.T) {
	texts := sandyTexts(t, 2)
	feed := writeFeedDir(t, texts)
	inj := resilience.NewInjector(7)
	inj.EnableKeys(resilience.PointIngestSwap, resilience.ForceError, 1+resilience.PostSwapKeyOffset)
	sw := &fakeSwapper{}
	p := newTestPoller(t, Config{Source: NewDirSource(feed), Injector: inj}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	// Advisory 1 (journal seq 1) published as generation 1, failed
	// post-publish verification, rolled back as generation 2; advisory 2
	// then published as generation 3.
	gens, applied, reverts := sw.snapshot()
	if reverts != 1 || len(applied) != 1 {
		t.Fatalf("reverts=%d applied=%v", reverts, applied)
	}
	assertMonotonic(t, gens)
	st := p.Status()
	if st.Generation != 3 || st.Rollbacks != 1 || st.Accepted != 1 || st.Quarantined != 1 {
		t.Fatalf("post-swap rollback status: %+v", st)
	}
}

func TestPollerPreSwapInjectionSkipsApply(t *testing.T) {
	texts := sandyTexts(t, 1)
	feed := writeFeedDir(t, texts)
	inj := resilience.NewInjector(7)
	inj.EnableKeys(resilience.PointIngestSwap, resilience.ForceError, 1)
	sw := &fakeSwapper{}
	p := newTestPoller(t, Config{Source: NewDirSource(feed), Injector: inj}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	if sw.calls != 0 {
		t.Fatalf("pre-swap injection still called ApplyParsed %d times", sw.calls)
	}
	if st := p.Status(); st.Quarantined != 1 || st.JournalSeq != 1 {
		t.Fatalf("pre-swap injection status: %+v", st)
	}
}

func TestPollerJournalInjectionQuarantines(t *testing.T) {
	texts := sandyTexts(t, 1)
	feed := writeFeedDir(t, texts)
	inj := resilience.NewInjector(7)
	inj.EnableKeys(resilience.PointIngestJournal, resilience.ForceError, 1)
	sw := &fakeSwapper{}
	p := newTestPoller(t, Config{Source: NewDirSource(feed), Injector: inj}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	st := p.Status()
	if st.Quarantined != 1 || st.JournalSeq != 0 || sw.calls != 0 {
		t.Fatalf("journal injection: %+v calls=%d", st, sw.calls)
	}
}

func TestPollerRunRequiresRecover(t *testing.T) {
	jdir := t.TempDir()
	j, _, err := OpenJournal(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(sandyTexts(t, 1)[0]); err != nil {
		t.Fatal(err)
	}
	j.Close()

	p := newTestPoller(t, Config{Source: NewDirSource(t.TempDir()), JournalDir: jdir}, &fakeSwapper{})
	if err := p.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "Recover") {
		t.Fatalf("Run before Recover: err=%v", err)
	}
}

func TestPollerBreakerTripAndRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	feedDown := errors.New("connection refused")
	healthy := false
	src := &scriptSource{name: "script", fn: func(ctx context.Context) ([]string, error) {
		if healthy {
			return nil, nil
		}
		return nil, feedDown
	}}
	p := newTestPoller(t, Config{
		Source:           src,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		now:              clk.now,
	}, &fakeSwapper{})
	mustRecover(t, p)
	ctx := context.Background()

	p.pollOnce(ctx, 1)
	if st := p.Status(); st.Breaker != "closed" || st.PollFailures != 1 {
		t.Fatalf("after failure 1: %+v", st)
	}
	p.pollOnce(ctx, 2)
	if st := p.Status(); st.Breaker != "open" || st.BreakerTrips != 1 {
		t.Fatalf("after failure 2: %+v", st)
	}

	// Open: attempts are skipped entirely — the feed is not polled.
	p.pollOnce(ctx, 3)
	if st := p.Status(); st.Polls != 2 {
		t.Fatalf("open breaker still polled: %+v", st)
	}

	// Cooldown elapses; the probe fails; the breaker re-opens (trip #2).
	clk.advance(10 * time.Second)
	p.pollOnce(ctx, 4)
	if st := p.Status(); st.Breaker != "open" || st.BreakerTrips != 2 {
		t.Fatalf("failed probe: %+v", st)
	}

	// Feed heals; the next probe closes the breaker.
	healthy = true
	clk.advance(10 * time.Second)
	p.pollOnce(ctx, 5)
	if st := p.Status(); st.Breaker != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("recovery: %+v", st)
	}
}

// TestPollerAttemptInjection pins that a ForceError rule at ingest-poll
// keyed by attempt number fails the whole attempt even though the source
// succeeded — the injector models feed-level faults without a fake source.
func TestPollerAttemptInjection(t *testing.T) {
	inj := resilience.NewInjector(7)
	inj.EnableKeys(resilience.PointIngestPoll, resilience.ForceError, 2)
	src := &scriptSource{name: "ok", fn: func(ctx context.Context) ([]string, error) { return nil, nil }}
	p := newTestPoller(t, Config{Source: src, Injector: inj}, &fakeSwapper{})
	mustRecover(t, p)

	p.pollOnce(context.Background(), 1)
	p.pollOnce(context.Background(), 2)
	p.pollOnce(context.Background(), 3)
	st := p.Status()
	if st.PollFailures != 1 {
		t.Fatalf("injected attempt failure: %+v", st)
	}
	if !strings.Contains(st.LastError, "injected") {
		t.Fatalf("last_error %q is not the injected fault", st.LastError)
	}
}

// TestPollerCorruptItemInjection mangles one advisory in flight via the
// injector's item key space: it must quarantine while its neighbors apply.
func TestPollerCorruptItemInjection(t *testing.T) {
	texts := sandyTexts(t, 3)
	feed := writeFeedDir(t, texts)
	inj := resilience.NewInjector(7)
	inj.EnableKeys(resilience.PointIngestPoll, resilience.Corrupt, 2) // second accepted item
	sw := &fakeSwapper{}
	p := newTestPoller(t, Config{Source: NewDirSource(feed), Injector: inj}, sw)
	mustRecover(t, p)
	p.pollOnce(context.Background(), 1)

	st := p.Status()
	if st.Accepted+st.Quarantined != 3 {
		t.Fatalf("items lost: %+v", st)
	}
	if st.Quarantined != 1 {
		t.Fatalf("corrupt item not quarantined: %+v", st)
	}
	if inj.Fired(resilience.PointIngestPoll) == 0 {
		t.Fatal("corrupt rule never fired")
	}
}

func TestPollerRunLoop(t *testing.T) {
	texts := sandyTexts(t, 4)
	feed := writeFeedDir(t, texts)
	sw := &fakeSwapper{}
	p := newTestPoller(t, Config{
		Source:   NewDirSource(feed),
		Interval: time.Millisecond,
	}, sw)
	mustRecover(t, p)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Run(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for p.Status().Accepted < 4 {
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("run loop stalled: %+v", p.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st := p.Status(); st.Generation != 4 || st.JournalLag != 0 {
		t.Fatalf("final status: %+v", st)
	}
}

// assertMonotonic fails unless gens is strictly increasing by exactly one —
// no gaps (a gap means a generation was skipped) and no repeats (a repeat
// means two worlds shared a generation).
func assertMonotonic(t *testing.T, gens []uint64) {
	t.Helper()
	for i, g := range gens {
		if g != uint64(i+1) {
			t.Fatalf("generation history not monotonic: %v", gens)
		}
	}
}

// assertQuarantined fails unless text sits in the dead-letter directory
// with a reason file containing wantReason.
func assertQuarantined(t *testing.T, journalDir, text, wantReason string) {
	t.Helper()
	// Mirror quarantine.Put's content addressing.
	q, err := newQuarantine(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("quarantine directory is empty")
	}
	entries, err := os.ReadDir(filepath.Join(journalDir, quarantineDirName))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".txt" {
			continue
		}
		payload, err := os.ReadFile(filepath.Join(journalDir, quarantineDirName, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(payload) != text {
			continue
		}
		reasonPath := strings.TrimSuffix(e.Name(), ".txt") + ".reason"
		reason, err := os.ReadFile(filepath.Join(journalDir, quarantineDirName, reasonPath))
		if err != nil {
			t.Fatalf("payload quarantined without a reason file: %v", err)
		}
		if !strings.Contains(string(reason), wantReason) {
			t.Fatalf("quarantine reason %q does not mention %q", reason, wantReason)
		}
		return
	}
	t.Fatalf("payload not found in quarantine")
}
