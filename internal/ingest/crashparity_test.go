package ingest

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"riskroute/internal/datasets"
	"riskroute/internal/serve"
	"riskroute/internal/topology"
)

// newServeWorld builds a reduced-scale real serving world (the same shape
// the serve package's own tests use, smaller: warmup dominates).
func newServeWorld(t *testing.T) *serve.Server {
	t.Helper()
	s, err := serve.New(serve.Config{
		Networks:   []*topology.Network{datasets.NetworkByName("Sprint")},
		Blocks:     4000,
		EventScale: 0.02,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	return s
}

// routeBody fetches one /v1/route response body through the server's real
// handler stack. Bodies are compared byte-for-byte between runs: any
// divergence in cost, path, or generation breaks parity.
func routeBody(t *testing.T, s *serve.Server, from, to string) string {
	t.Helper()
	v := url.Values{"network": {"Sprint"}, "from": {from}, "to": {to}}
	req := httptest.NewRequest(http.MethodGet, "/v1/route?"+v.Encode(), nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("route %s→%s: %d %s", from, to, rec.Code, rec.Body.String())
	}
	return rec.Body.String()
}

// TestCrashRecoveryParity pins the tentpole guarantee end to end against a
// real serving world: a daemon killed BETWEEN the journal fsync and the
// snapshot swap of advisory k recovers — by journal replay alone — to the
// same generation and byte-identical route answers as a daemon that was
// never killed.
func TestCrashRecoveryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two serving worlds")
	}
	texts := sandyTexts(t, 3)
	sprint := datasets.NetworkByName("Sprint")
	pairs := [][2]string{
		{sprint.PoPs[0].Name, sprint.PoPs[len(sprint.PoPs)-1].Name},
		{sprint.PoPs[1].Name, sprint.PoPs[len(sprint.PoPs)/2].Name},
	}

	// Uninterrupted run: all three advisories stream through normally.
	clean := newServeWorld(t)
	cleanPoller := newTestPoller(t, Config{Source: NewDirSource(writeFeedDir(t, texts))}, clean)
	mustRecover(t, cleanPoller)
	cleanPoller.pollOnce(t.Context(), 1)
	if st := cleanPoller.Status(); st.Accepted != 3 {
		t.Fatalf("clean run: %+v", st)
	}
	wantGen := clean.Generation()
	var wantBodies []string
	for _, pr := range pairs {
		wantBodies = append(wantBodies, routeBody(t, clean, pr[0], pr[1]))
	}

	// Crashed run: advisories 1 and 2 are ingested and applied; advisory 3
	// reaches the journal (fsynced, sequence acknowledged) and then the
	// process dies before the swap — simulated by appending directly and
	// never calling the swapper. The swapper here is a fake: the journal
	// file is the only thing that survives a real kill -9 anyway.
	jdir := t.TempDir()
	crashed := newTestPoller(t, Config{Source: NewDirSource(writeFeedDir(t, texts[:2])), JournalDir: jdir}, &fakeSwapper{})
	mustRecover(t, crashed)
	crashed.pollOnce(t.Context(), 1)
	if st := crashed.Status(); st.Accepted != 2 || st.JournalSeq != 2 {
		t.Fatalf("pre-crash run: %+v", st)
	}
	if _, err := crashed.journal.Append(texts[2]); err != nil {
		t.Fatal(err)
	}
	crashed.Close() // the crash

	// Restart on the surviving journal: Recover alone must reach parity.
	reborn := newServeWorld(t)
	recovered := newTestPoller(t, Config{JournalDir: jdir}, reborn)
	if n := mustRecover(t, recovered); n != 3 {
		t.Fatalf("replay applied %d records, want 3", n)
	}
	if got := reborn.Generation(); got != wantGen {
		t.Fatalf("recovered generation %d, uninterrupted run reached %d", got, wantGen)
	}
	for i, pr := range pairs {
		got := routeBody(t, reborn, pr[0], pr[1])
		if got != wantBodies[i] {
			t.Fatalf("route %s→%s diverged after recovery:\n  clean:     %s\n  recovered: %s",
				pr[0], pr[1], wantBodies[i], got)
		}
	}
	if st := recovered.Status(); st.Replayed != 3 || st.JournalLag != 0 {
		t.Fatalf("recovered status: %+v", st)
	}
}
