package ingest

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Source is one advisory feed. Poll returns the advisories that appeared
// since the previous call, oldest first; an empty slice means "nothing
// new". Poll must honor ctx cancellation — the poller wraps every attempt
// in a per-attempt timeout.
type Source interface {
	// Poll fetches new advisories.
	Poll(ctx context.Context) ([]string, error)
	// Name describes the feed for logs and the status endpoint.
	Name() string
}

// NewSource builds a Source from a feed spec: "http://" or "https://"
// prefixes select the HTTP poller, anything else is a directory watched for
// advisory files.
func NewSource(spec string) (Source, error) {
	if spec == "" {
		return nil, fmt.Errorf("ingest: empty feed spec")
	}
	if strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
		return NewHTTPSource(spec, nil), nil
	}
	return NewDirSource(spec), nil
}

// DirSource watches a directory: every regular file matching *.txt is one
// advisory bulletin, consumed in lexicographic filename order (NHC-style
// "sandy-018.txt" names sort chronologically). Files are tracked by name
// in memory only — after a restart everything is re-read and the poller's
// journal-seeded dedupe discards what was already applied, so a half-
// consumed directory converges instead of double-applying.
type DirSource struct {
	dir  string
	seen map[string]bool
}

// NewDirSource watches dir for advisory files.
func NewDirSource(dir string) *DirSource {
	return &DirSource{dir: dir, seen: make(map[string]bool)}
}

// Name implements Source.
func (d *DirSource) Name() string { return "dir:" + d.dir }

// Poll implements Source: it lists the directory and reads files not yet
// consumed. A file that vanishes between list and read is skipped (feeds
// rotate); any other read failure aborts the poll so the breaker sees it.
func (d *DirSource) Poll(ctx context.Context) ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: list feed dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") || d.seen[e.Name()] {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		data, err := os.ReadFile(filepath.Join(d.dir, name))
		if os.IsNotExist(err) {
			d.seen[name] = true
			continue
		}
		if err != nil {
			return out, fmt.Errorf("ingest: read %s: %w", name, err)
		}
		d.seen[name] = true
		out = append(out, string(data))
	}
	return out, nil
}

// HTTPSource polls a URL that serves the latest advisory bulletin as plain
// text — the shape of the NHC's "current public advisory" pages. 200
// returns the bulletin (the poller dedupes repeats of the same advisory),
// 204 and 304 mean nothing new, anything else is a poll failure the
// breaker counts.
type HTTPSource struct {
	url    string
	client *http.Client
	last   string // last body seen, to skip re-delivering an unchanged page
}

// NewHTTPSource polls url with client (nil means http.DefaultClient; the
// per-attempt timeout comes from the poller's context, not the client).
func NewHTTPSource(url string, client *http.Client) *HTTPSource {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPSource{url: url, client: client}
}

// Name implements Source.
func (h *HTTPSource) Name() string { return h.url }

// maxFeedBytes bounds one HTTP feed response, mirroring the serving
// daemon's advisory body cap.
const maxFeedBytes = 1 << 20

// Poll implements Source.
func (h *HTTPSource) Poll(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.url, nil)
	if err != nil {
		return nil, fmt.Errorf("ingest: feed request: %w", err)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("ingest: feed poll: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// Fall through to read the bulletin.
	case http.StatusNoContent, http.StatusNotModified:
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("ingest: feed answered %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFeedBytes+1))
	if err != nil {
		return nil, fmt.Errorf("ingest: feed body: %w", err)
	}
	if len(body) > maxFeedBytes {
		return nil, fmt.Errorf("ingest: feed body exceeds %d bytes", maxFeedBytes)
	}
	text := string(body)
	if text == h.last {
		return nil, nil
	}
	h.last = text
	return []string{text}, nil
}
