GO ?= go

.PHONY: tier1 tier2 fuzz-smoke

# tier1 is the gate every change must keep green: full build + test suite.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# tier2 adds static analysis, the race detector, and short fuzz smokes over
# the input parsers (the corrupt-input seed corpora run even at -fuzztime=0,
# so regressions in rejected-input handling surface here first).
tier2: tier1
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=5s ./internal/topology
	$(GO) test -run='^$$' -fuzz='^FuzzParseGraphML$$' -fuzztime=5s ./internal/topology
	$(GO) test -run='^$$' -fuzz='^FuzzParseAdvisory$$' -fuzztime=5s ./internal/forecast
