GO ?= go

# BENCH_BASELINE / BENCH_NEW name the checked-in summaries the regression
# gate compares; BENCH_THRESHOLD is the min-ns/op slowdown (percent) that
# fails bench-compare.
BENCH_BASELINE ?= BENCH_PR9.json
BENCH_NEW ?= BENCH_PR10.json
BENCH_THRESHOLD ?= 10

.PHONY: tier1 tier2 fuzz-smoke bench bench-compare determinism

# tier1 is the gate every change must keep green: full build + test suite.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# tier2 adds static analysis, the race detector, and short fuzz smokes over
# the input parsers (the corrupt-input seed corpora run even at -fuzztime=0,
# so regressions in rejected-input handling surface here first).
tier2: tier1
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke

# bench runs every benchmark three times and distills the text output into
# $(BENCH_NEW) (per-benchmark min/mean ns/op plus the tracing overhead
# ratio from the RouteWithTracingOff/On pair — budget: <= 2% on the
# full-compute route path, the PR 2 telemetry gate's shape; see DESIGN.md
# §11). The focused -count=10 passes tighten the noise floor on both
# overhead pairs (min ns/op converges to the true floor as count grows).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=3 ./... | tee bench.out
	$(GO) test -run='^$$' -bench='EvaluateTelemetry' -count=10 -benchtime=0.5s ./internal/core | tee -a bench.out
	# RouteTracingPaired interleaves traced/untraced batches inside one
	# timer window and reports the overhead ratio itself — the only
	# estimator that resolves a ~0.5µs delta on a noisy box (separately
	# invoked Off/On minima swing by several percent either way).
	$(GO) test -run='^$$' -bench='RouteTracingPaired' -count=5 -benchtime=1s ./internal/serve | tee -a bench.out
	# RouteExplainPaired is the PR 8 explain-off gate: the explain-capable
	# route handler may cost requests that never ask for an explanation at
	# most 1% over the attribution-free body (same interleaved estimator).
	$(GO) test -run='^$$' -bench='RouteExplainPaired' -count=5 -benchtime=1s ./internal/serve | tee -a bench.out
	# The coldstart gate is the PR 9 snapshot-boot floor: booting from a
	# baked world snapshot must be at least 20x faster than the full fit
	# (measured ~55x; the margin absorbs slow CI hosts).
	$(GO) run ./cmd/benchjson -o $(BENCH_NEW) \
		-overhead-off RouteWithTracingOff -overhead-on RouteWithTracingOn \
		-overhead-paired RouteTracingPaired \
		-gate 'explain=RouteExplainOff/RouteExplainOn/RouteExplainPaired@1' \
		-gate 'coldstart=ColdStartFit/ColdStartSnapshot@x20' bench.out
	@rm -f bench.out

# bench-compare diffs the new summary against the checked-in baseline and
# exits nonzero when any benchmark's min ns/op regressed by at least
# $(BENCH_THRESHOLD) percent. Run `make bench` first to produce $(BENCH_NEW).
bench-compare:
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) \
		$(BENCH_BASELINE) $(BENCH_NEW)

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=5s ./internal/topology
	$(GO) test -run='^$$' -fuzz='^FuzzParseGraphML$$' -fuzztime=5s ./internal/topology
	$(GO) test -run='^$$' -fuzz='^FuzzParseAdvisory$$' -fuzztime=5s ./internal/forecast
	$(GO) test -run='^$$' -fuzz='^FuzzEquirectGuard$$' -fuzztime=5s ./internal/geo
	$(GO) test -run='^$$' -fuzz='^FuzzAdvisoryIngest$$' -fuzztime=5s ./internal/serve
	$(GO) test -run='^$$' -fuzz='^FuzzJournalReplay$$' -fuzztime=5s ./internal/ingest
	$(GO) test -run='^$$' -fuzz='^FuzzJournalAppendReplay$$' -fuzztime=5s ./internal/ingest
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotLoad$$' -fuzztime=5s ./internal/snapshot
	$(GO) test -run='^$$' -fuzz='^FuzzScenarioSpec$$' -fuzztime=5s ./internal/scenario

# determinism replays the bit-identity tests under contrasting scheduler
# widths: results must not depend on how many cores the host exposes.
determinism:
	GOMAXPROCS=1 $(GO) test -run 'Deterministic' ./internal/parallel ./internal/kde ./internal/population
	GOMAXPROCS=4 $(GO) test -run 'Deterministic' -count=1 ./internal/parallel ./internal/kde ./internal/population
