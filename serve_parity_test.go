package riskroute_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"riskroute"
)

// TestServerMatchesBatchEngine is the serving acceptance gate: for the same
// synthetic-world inputs, the daemon must serve byte-identical costs to the
// batch pipeline the `riskroute route` CLI runs — at the startup generation
// and again after an advisory hot-swap. The two worlds here are built
// through entirely separate code paths (serve's internal warmup vs the
// public facade chain), so any drift in either replication shows up as a
// float mismatch.
func TestServerMatchesBatchEngine(t *testing.T) {
	const (
		blocks     = 4000
		eventScale = 0.03
		seed       = 1
	)
	net := riskroute.BuiltinNetwork("Sprint")
	if net == nil {
		t.Fatal("Sprint missing")
	}
	from, to := net.PoPs[0].Name, net.PoPs[len(net.PoPs)-1].Name

	srv, err := riskroute.NewServer(riskroute.ServeConfig{
		Networks:   []*riskroute.Network{net},
		Blocks:     blocks,
		EventScale: eventScale,
		Seed:       seed,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}

	// The batch chain, exactly as the CLI's engineFor wires it.
	model, err := riskroute.FitHazard(riskroute.SyntheticHazardSources(eventScale, seed),
		riskroute.HazardFitConfig{})
	if err != nil {
		t.Fatalf("FitHazard: %v", err)
	}
	census := riskroute.SyntheticCensus(blocks, seed)
	asg, err := riskroute.AssignPopulation(census, net)
	if err != nil {
		t.Fatalf("AssignPopulation: %v", err)
	}
	hist := model.PoPRisks(net)
	batchPair := func(adv *riskroute.Advisory) (rr, sp riskroute.PairResult) {
		ctx := &riskroute.Context{
			Net:       net,
			Hist:      hist,
			Fractions: asg.Fractions,
			Params:    riskroute.PaperParams(),
		}
		if adv != nil {
			rm := riskroute.DefaultForecastModel()
			ctx.Forecast = rm.PoPRisks(adv, net)
		}
		eng, err := riskroute.NewEngine(ctx, riskroute.Options{})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		src, dst := net.PoPIndex(from), net.PoPIndex(to)
		return eng.RiskRoutePair(src, dst), eng.ShortestPair(src, dst)
	}

	type leg struct {
		Path         []string `json:"path"`
		Miles        float64  `json:"miles"`
		BitRiskMiles float64  `json:"bit_risk_miles"`
	}
	var served struct {
		Generation uint64 `json:"generation"`
		Shortest   leg    `json:"shortest"`
		RiskRoute  leg    `json:"riskroute"`
	}
	query := func() {
		t.Helper()
		v := url.Values{"network": {net.Name}, "from": {from}, "to": {to}}
		req := httptest.NewRequest(http.MethodGet, "/v1/route?"+v.Encode(), nil)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("route: %d: %s", rec.Code, rec.Body.Bytes())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &served); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string, adv *riskroute.Advisory) {
		t.Helper()
		rr, sp := batchPair(adv)
		if served.RiskRoute.BitRiskMiles != rr.BitRiskMiles ||
			served.RiskRoute.Miles != rr.Miles ||
			served.Shortest.BitRiskMiles != sp.BitRiskMiles ||
			served.Shortest.Miles != sp.Miles {
			t.Fatalf("%s: served costs diverge from batch engine:\nserved rr=%v/%v sp=%v/%v\nbatch  rr=%v/%v sp=%v/%v",
				stage,
				served.RiskRoute.BitRiskMiles, served.RiskRoute.Miles,
				served.Shortest.BitRiskMiles, served.Shortest.Miles,
				rr.BitRiskMiles, rr.Miles, sp.BitRiskMiles, sp.Miles)
		}
		if len(served.RiskRoute.Path) != len(rr.Path) {
			t.Fatalf("%s: path length %d != %d", stage, len(served.RiskRoute.Path), len(rr.Path))
		}
		for i, idx := range rr.Path {
			if served.RiskRoute.Path[i] != net.PoPs[idx].Name {
				t.Fatalf("%s: path hop %d: %q != %q", stage, i,
					served.RiskRoute.Path[i], net.PoPs[idx].Name)
			}
		}
	}

	query()
	if served.Generation != 1 {
		t.Fatalf("startup generation %d, want 1", served.Generation)
	}
	check("generation 1 (no storm)", nil)

	// Hot-swap a Sandy advisory and compare again on generation 2.
	track := riskroute.HurricaneByName("Sandy")
	replay, err := riskroute.LoadHurricaneReplay(track)
	if err != nil {
		t.Fatal(err)
	}
	adv := replay.Advisories[len(replay.Advisories)/2]
	req := httptest.NewRequest(http.MethodPost, "/v1/advisory", strings.NewReader(adv.Text()))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST advisory: %d: %s", rec.Code, rec.Body.Bytes())
	}

	query()
	if served.Generation != 2 {
		t.Fatalf("post-swap generation %d, want 2", served.Generation)
	}
	check("generation 2 (Sandy advisory)", adv)
}
