package riskroute_test

// Smoke tests for the runnable examples: each builds and runs end to end
// against the full synthetic world, so the documented entry points can't
// rot. The two fastest examples run by default; the heavier scenario
// examples are covered by `go vet`/`go build` and the equivalent CLI
// integration tests in cmd/riskroute.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string, wantSubstrings ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("examples build a full synthetic world")
	}
	cmd := exec.Command("go", "run", "./examples/"+dir)
	cmd.Dir = "."
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(4 * time.Minute):
		cmd.Process.Kill()
		t.Fatalf("example %s timed out", dir)
	}
	if err != nil {
		t.Fatalf("example %s: %v\n%s", dir, err, out)
	}
	for _, want := range wantSubstrings {
		if !strings.Contains(string(out), want) {
			t.Errorf("example %s output missing %q:\n%s", dir, want, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "quickstart",
		"Level3, Houston TX -> Boston MA", "shortest", "riskroute", "risk reduction")
}

func TestExampleCustomData(t *testing.T) {
	runExample(t, "customdata",
		"loaded GulfNet", "traffic-weighted ratios", "Katrina simulation")
}

func TestExampleServing(t *testing.T) {
	runExample(t, "serving",
		"serving Sprint at generation 1", "repeat query cached: true",
		"advisory hot-swap: SANDY", "-> generation 2",
		"draining: readyz now 503")
}
