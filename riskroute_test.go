package riskroute_test

import (
	"bytes"
	"strings"
	"testing"

	"riskroute"
)

// world builds a reduced-scale public-API world shared by the facade tests.
func world(t *testing.T) (*riskroute.HazardModel, *riskroute.Census) {
	t.Helper()
	model, err := riskroute.FitHazard(riskroute.SyntheticHazardSources(0.05, 1),
		riskroute.HazardFitConfig{CellMiles: 35})
	if err != nil {
		t.Fatalf("FitHazard: %v", err)
	}
	return model, riskroute.SyntheticCensus(4000, 1)
}

func TestPublicQuickstartFlow(t *testing.T) {
	model, census := world(t)

	net := riskroute.BuiltinNetwork("Level3")
	if net == nil {
		t.Fatal("Level3 missing")
	}
	asg, err := riskroute.AssignPopulation(census, net)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.PaperParams(),
	}
	engine, err := riskroute.NewEngine(ctx, riskroute.Options{})
	if err != nil {
		t.Fatal(err)
	}
	from, to := net.PoPIndex("Houston"), net.PoPIndex("Boston")
	rr := engine.RiskRoutePair(from, to)
	sp := engine.ShortestPair(from, to)
	if rr.BitRiskMiles > sp.BitRiskMiles+1e-6 {
		t.Errorf("RiskRoute bit-risk %v exceeds shortest-path %v", rr.BitRiskMiles, sp.BitRiskMiles)
	}
	if rr.Miles < sp.Miles-1e-6 {
		t.Errorf("RiskRoute %v mi shorter than shortest path %v mi", rr.Miles, sp.Miles)
	}
	ratios := engine.Evaluate()
	if ratios.RiskReduction <= 0 {
		t.Errorf("risk reduction = %v, want > 0 at paper params", ratios.RiskReduction)
	}
}

func TestPublicBuiltinCorpus(t *testing.T) {
	nets := riskroute.BuiltinNetworks()
	if len(nets) != 23 {
		t.Fatalf("%d networks", len(nets))
	}
	if len(riskroute.BuiltinTier1()) != 7 || len(riskroute.BuiltinRegional()) != 16 {
		t.Error("tier split wrong")
	}
	if !riskroute.BuiltinPeered("Level3", "AT&T") {
		t.Error("Level3-AT&T should be peered")
	}
	if len(riskroute.BuiltinPeers("Telepak")) == 0 {
		t.Error("Telepak has no peers")
	}
	if riskroute.BuiltinNetwork("nope") != nil {
		t.Error("unknown network should be nil")
	}
}

func TestPublicTopologyRoundTrip(t *testing.T) {
	nets := []*riskroute.Network{riskroute.BuiltinNetwork("Abilene")}
	var buf bytes.Buffer
	if err := riskroute.WriteTopology(&buf, nets); err != nil {
		t.Fatal(err)
	}
	got, err := riskroute.ParseTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].PoPs) != 11 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	var gml bytes.Buffer
	if err := riskroute.WriteGraphML(&gml, nets[0]); err != nil {
		t.Fatal(err)
	}
	g, err := riskroute.ParseGraphML(&gml, "Abilene", riskroute.Regional)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.PoPs) != 11 {
		t.Fatalf("graphml round trip lost PoPs: %d", len(g.PoPs))
	}
}

func TestPublicDistance(t *testing.T) {
	nyc := riskroute.Point{Lat: 40.71, Lon: -74.01}
	la := riskroute.Point{Lat: 34.05, Lon: -118.24}
	d := riskroute.Distance(nyc, la)
	if d < 2400 || d > 2500 {
		t.Errorf("NYC-LA = %v miles", d)
	}
	if !riskroute.ContinentalUS.Contains(nyc) {
		t.Error("NYC should be inside the continental US box")
	}
}

func TestPublicForecastPipeline(t *testing.T) {
	tracks := riskroute.Hurricanes()
	if len(tracks) != 3 {
		t.Fatalf("%d storms", len(tracks))
	}
	sandy := riskroute.HurricaneByName("Sandy")
	if sandy == nil {
		t.Fatal("Sandy missing")
	}
	corpus := riskroute.AdvisoryCorpus(sandy)
	if len(corpus) != 60 {
		t.Errorf("Sandy corpus = %d advisories, want 60", len(corpus))
	}
	a, err := riskroute.ParseAdvisory(corpus[len(corpus)/2])
	if err != nil {
		t.Fatal(err)
	}
	if a.Storm != "SANDY" {
		t.Errorf("storm = %q", a.Storm)
	}
	replay, err := riskroute.LoadHurricaneReplay(sandy)
	if err != nil {
		t.Fatal(err)
	}
	scope := riskroute.ScopeOf(replay)
	net := riskroute.BuiltinNetwork("Level3")
	h, trop := scope.PoPsInScope(net)
	if h == 0 || trop < h {
		t.Errorf("Sandy scope on Level3: %d hurricane, %d tropical", h, trop)
	}
	rm := riskroute.DefaultForecastModel()
	if rm.RhoHurricane != 100 || rm.RhoTropical != 50 {
		t.Errorf("forecast model = %+v", rm)
	}
}

func TestPublicInterdomain(t *testing.T) {
	model, census := world(t)
	nets := riskroute.BuiltinNetworks()
	comp, err := riskroute.BuildComposite(nets, riskroute.BuiltinPeered)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Flat.PoPs) != 354+455 {
		t.Errorf("composite has %d PoPs", len(comp.Flat.PoPs))
	}
	an, err := riskroute.NewInterdomainAnalysis(comp, model, census, nil,
		riskroute.PaperParams(), riskroute.Options{AlphaBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := an.RegionalRatios("Digex", []string{"Digex", "Hibernia", "Gridnet"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs == 0 {
		t.Error("no interdomain pairs evaluated")
	}
	cands := riskroute.CandidatePeers(nets, "Telepak", riskroute.BuiltinPeered)
	if len(cands) == 0 {
		t.Error("Telepak should have candidate peers")
	}
	for _, c := range cands {
		if riskroute.BuiltinPeered("Telepak", c) {
			t.Errorf("candidate %s already peered", c)
		}
	}
}

func TestPublicProvisioning(t *testing.T) {
	model, census := world(t)
	net := riskroute.BuiltinNetwork("Tinet")
	asg, err := riskroute.AssignPopulation(census, net)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.Params{LambdaH: 1e5},
	}
	engine, err := riskroute.NewEngine(ctx, riskroute.Options{AlphaBuckets: 8})
	if err != nil {
		t.Fatal(err)
	}
	best, err := engine.BestAdditionalLink()
	if err != nil {
		t.Fatal(err)
	}
	if best.Link.A == best.Link.B {
		t.Error("degenerate link")
	}
	if net.HasLink(best.Link.A, best.Link.B) {
		t.Error("suggested link already exists")
	}
}

func TestPublicLab(t *testing.T) {
	lab, err := riskroute.NewLab(riskroute.LabConfig{
		CensusBlocks:        4000,
		EventScale:          0.02,
		MaxEventsPerCatalog: 1000,
		CellMiles:           40,
		AlphaBuckets:        6,
		ReplayStride:        30,
		CVCandidates:        4,
		CVMaxEvents:         200,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := lab.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Errorf("Table2 rows = %d", len(r.Rows))
	}
	names := make([]string, 0, 7)
	for _, row := range r.Rows {
		names = append(names, row.Network)
	}
	if !strings.Contains(strings.Join(names, ","), "Level3") {
		t.Error("Table2 missing Level3")
	}
}
