// benchjson converts `go test -bench` text output into a machine-readable
// JSON summary, aggregating repeated -count runs per benchmark (min and mean
// ns/op; the minimum is the noise-floor estimator used for comparisons).
// Optionally it computes the telemetry overhead ratio between a paired
// off/on benchmark:
//
//	go test -bench=. -benchmem -count=3 ./... | \
//	    go run ./cmd/benchjson -o BENCH_PR2.json \
//	        -overhead-off EvaluateTelemetryOff -overhead-on EvaluateTelemetryOn
//
// Input may also be given as file arguments. Lines that are not benchmark
// results (package headers, PASS/ok, cpu info) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type overhead struct {
	Off         string  `json:"off"`
	On          string  `json:"on"`
	OffNsMin    float64 `json:"off_ns_per_op_min"`
	OnNsMin     float64 `json:"on_ns_per_op_min"`
	OverheadPct float64 `json:"overhead_pct"`
}

type summary struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	Benchmarks []result  `json:"benchmarks"`
	Overhead   *overhead `json:"telemetry_overhead,omitempty"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	offName := flag.String("overhead-off", "", "baseline benchmark for the overhead ratio (substring match)")
	onName := flag.String("overhead-on", "", "instrumented benchmark for the overhead ratio (substring match)")
	flag.Parse()

	agg := map[string]*result{}
	var order []string
	scan := func(r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if res, ok := parseLine(sc.Text()); ok {
				cur, seen := agg[res.Name]
				if !seen {
					agg[res.Name] = &res
					order = append(order, res.Name)
					continue
				}
				cur.Runs++
				cur.Iterations += res.Iterations
				cur.NsPerOpMean += res.NsPerOpMean
				if res.NsPerOpMin < cur.NsPerOpMin {
					cur.NsPerOpMin = res.NsPerOpMin
				}
				if res.BytesPerOp > cur.BytesPerOp {
					cur.BytesPerOp = res.BytesPerOp
				}
				if res.AllocsPerOp > cur.AllocsPerOp {
					cur.AllocsPerOp = res.AllocsPerOp
				}
			}
		}
		return sc.Err()
	}

	if flag.NArg() == 0 {
		if err := scan(os.Stdin); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = scan(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if len(agg) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	s := summary{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sort.Strings(order)
	for _, name := range order {
		r := *agg[name]
		r.NsPerOpMean /= float64(r.Runs)
		s.Benchmarks = append(s.Benchmarks, r)
	}
	if *offName != "" && *onName != "" {
		off, on := find(s.Benchmarks, *offName), find(s.Benchmarks, *onName)
		if off == nil || on == nil {
			fatal(fmt.Errorf("overhead pair %q/%q not found in results", *offName, *onName))
		}
		s.Overhead = &overhead{
			Off:         off.Name,
			On:          on.Name,
			OffNsMin:    off.NsPerOpMin,
			OnNsMin:     on.NsPerOpMin,
			OverheadPct: 100 * (on.NsPerOpMin - off.NsPerOpMin) / off.NsPerOpMin,
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fatal(err)
	}
}

// parseLine matches `BenchmarkName-8   100  12345 ns/op [ 67 B/op  8 allocs/op ]`.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: name, Runs: 1, Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOpMin, res.NsPerOpMean, ok = v, v, true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, ok
}

func find(rs []result, substr string) *result {
	for i := range rs {
		if strings.Contains(rs[i].Name, substr) {
			return &rs[i]
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
