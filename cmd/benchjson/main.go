// benchjson converts `go test -bench` text output into a machine-readable
// JSON summary, aggregating repeated -count runs per benchmark (min and mean
// ns/op; the minimum is the noise-floor estimator used for comparisons).
// Optionally it computes the telemetry overhead ratio between a paired
// off/on benchmark:
//
//	go test -bench=. -benchmem -count=3 ./... | \
//	    go run ./cmd/benchjson -o BENCH_PR2.json \
//	        -overhead-off EvaluateTelemetryOff -overhead-on EvaluateTelemetryOn
//
// When the off/on delta is too small for separately-invoked minima to
// resolve (sub-microsecond costs on a shared box), -overhead-paired names a
// benchmark that interleaves both variants inside one timer window and
// publishes the ratio itself via b.ReportMetric(..., "overhead-pct"); that
// self-reported figure then becomes telemetry_overhead.overhead_pct, with
// the off/on minima kept alongside for reference.
//
// Input may also be given as file arguments. Lines that are not benchmark
// results (package headers, PASS/ok, cpu info) are ignored.
//
// With -compare it becomes a regression gate over two of its own JSON
// summaries: it diffs the min ns/op of every benchmark present in both,
// prints a per-benchmark delta table, and exits nonzero when any benchmark
// slowed down by at least -threshold percent:
//
//	go run ./cmd/benchjson -compare -threshold 10 BENCH_PR2.json BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	Iterations  int64   `json:"iterations"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// OverheadPct carries a benchmark's self-reported "overhead-pct"
	// custom metric (b.ReportMetric), averaged over repeated runs.
	// Paired-interleave benchmarks use it to publish an off/on ratio
	// measured inside one timer window.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

type overhead struct {
	Off         string  `json:"off"`
	On          string  `json:"on"`
	OffNsMin    float64 `json:"off_ns_per_op_min"`
	OnNsMin     float64 `json:"on_ns_per_op_min"`
	OverheadPct float64 `json:"overhead_pct"`
	// PairedBench is set when -overhead-paired named a benchmark that
	// measures the off/on delta in-loop; its self-reported ratio then
	// overrides the min-of-separate-invocations quotient above, which
	// cannot resolve sub-microsecond deltas on a noisy host.
	PairedBench string `json:"paired_bench,omitempty"`
}

// gate is one named off/on budget evaluated while summarizing:
// -gate NAME=OFF/ON[/PAIRED][@MAX] computes the overhead ratio between the
// OFF and ON benchmarks (PAIRED's self-reported overhead-pct metric, when
// named, overrides the min quotient exactly as -overhead-paired does) and,
// when @MAX is given, fails the run if the ratio exceeds MAX percent.
// The @xMIN variant inverts the budget into a speedup floor: the gate
// computes OFF÷ON as a speedup factor and fails when it drops below MIN
// (e.g. coldstart=ColdStartFit/ColdStartSnapshot@x20 demands the snapshot
// boot be at least 20x faster than the fit boot).
type gate struct {
	Name        string  `json:"name"`
	Off         string  `json:"off"`
	On          string  `json:"on"`
	OffNsMin    float64 `json:"off_ns_per_op_min"`
	OnNsMin     float64 `json:"on_ns_per_op_min"`
	OverheadPct float64 `json:"overhead_pct,omitempty"`
	PairedBench string  `json:"paired_bench,omitempty"`
	MaxPct      float64 `json:"max_pct,omitempty"`
	SpeedupX    float64 `json:"speedup_x,omitempty"`
	MinSpeedup  float64 `json:"min_speedup,omitempty"`
	Enforced    bool    `json:"enforced"`
	Pass        bool    `json:"pass"`
}

// gateSpec is one parsed -gate argument.
type gateSpec struct {
	name, off, on, paired string
	maxPct                float64
	minSpeedup            float64
	speedup               bool
	enforced              bool
}

// gateFlags collects repeated -gate arguments.
type gateFlags []gateSpec

func (g *gateFlags) String() string { return fmt.Sprintf("%d gates", len(*g)) }

func (g *gateFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("gate %q: want NAME=OFF/ON[/PAIRED][@MAX]", v)
	}
	spec := gateSpec{name: name}
	benches, max, hasMax := strings.Cut(rest, "@")
	if hasMax {
		if factor, isSpeedup := strings.CutPrefix(max, "x"); isSpeedup {
			min, err := strconv.ParseFloat(factor, 64)
			if err != nil || min <= 0 {
				return fmt.Errorf("gate %q: bad min speedup %q", v, max)
			}
			spec.minSpeedup, spec.speedup, spec.enforced = min, true, true
		} else {
			pct, err := strconv.ParseFloat(max, 64)
			if err != nil {
				return fmt.Errorf("gate %q: bad max percent %q", v, max)
			}
			spec.maxPct, spec.enforced = pct, true
		}
	}
	parts := strings.Split(benches, "/")
	if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("gate %q: want NAME=OFF/ON[/PAIRED][@MAX]", v)
	}
	spec.off, spec.on = parts[0], parts[1]
	if len(parts) == 3 {
		spec.paired = parts[2]
	}
	*g = append(*g, spec)
	return nil
}

type summary struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	Benchmarks []result  `json:"benchmarks"`
	Overhead   *overhead `json:"telemetry_overhead,omitempty"`
	Gates      []gate    `json:"gates,omitempty"`
}

func main() {
	out := flag.String("o", "", "write JSON here instead of stdout")
	offName := flag.String("overhead-off", "", "baseline benchmark for the overhead ratio (substring match)")
	onName := flag.String("overhead-on", "", "instrumented benchmark for the overhead ratio (substring match)")
	pairedName := flag.String("overhead-paired", "", "benchmark whose self-reported overhead-pct metric overrides the off/on min quotient (substring match)")
	compare := flag.Bool("compare", false, "compare two JSON summaries: benchjson -compare OLD NEW")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent for -compare")
	var gates gateFlags
	flag.Var(&gates, "gate", "budget NAME=OFF/ON[/PAIRED][@MAX|@xMIN], repeatable; @MAX caps overhead percent, @xMIN demands an OFF/ON speedup factor; exits nonzero on breach")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare wants exactly two file arguments (OLD NEW), got %d", flag.NArg()))
		}
		old, err := loadSummary(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		new_, err := loadSummary(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		regressed := compareSummaries(os.Stdout, old, new_, *threshold)
		if regressed {
			os.Exit(1)
		}
		return
	}

	agg := map[string]*result{}
	var order []string
	scan := func(r io.Reader) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if res, ok := parseLine(sc.Text()); ok {
				cur, seen := agg[res.Name]
				if !seen {
					agg[res.Name] = &res
					order = append(order, res.Name)
					continue
				}
				cur.Runs++
				cur.Iterations += res.Iterations
				cur.NsPerOpMean += res.NsPerOpMean
				cur.OverheadPct += res.OverheadPct
				if res.NsPerOpMin < cur.NsPerOpMin {
					cur.NsPerOpMin = res.NsPerOpMin
				}
				if res.BytesPerOp > cur.BytesPerOp {
					cur.BytesPerOp = res.BytesPerOp
				}
				if res.AllocsPerOp > cur.AllocsPerOp {
					cur.AllocsPerOp = res.AllocsPerOp
				}
			}
		}
		return sc.Err()
	}

	if flag.NArg() == 0 {
		if err := scan(os.Stdin); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = scan(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if len(agg) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	s := summary{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sort.Strings(order)
	for _, name := range order {
		r := *agg[name]
		r.NsPerOpMean /= float64(r.Runs)
		r.OverheadPct /= float64(r.Runs)
		s.Benchmarks = append(s.Benchmarks, r)
	}
	if *offName != "" && *onName != "" {
		off, on := find(s.Benchmarks, *offName), find(s.Benchmarks, *onName)
		if off == nil || on == nil {
			fatal(fmt.Errorf("overhead pair %q/%q not found in results", *offName, *onName))
		}
		s.Overhead = &overhead{
			Off:         off.Name,
			On:          on.Name,
			OffNsMin:    off.NsPerOpMin,
			OnNsMin:     on.NsPerOpMin,
			OverheadPct: 100 * (on.NsPerOpMin - off.NsPerOpMin) / off.NsPerOpMin,
		}
		if *pairedName != "" {
			p := find(s.Benchmarks, *pairedName)
			if p == nil {
				fatal(fmt.Errorf("overhead-paired benchmark %q not found in results", *pairedName))
			}
			s.Overhead.PairedBench = p.Name
			s.Overhead.OverheadPct = p.OverheadPct
		}
	}
	gateFailed := false
	for _, spec := range gates {
		g, err := evalGate(s.Benchmarks, spec)
		if err != nil {
			fatal(err)
		}
		s.Gates = append(s.Gates, g)
		if !g.Pass {
			gateFailed = true
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fatal(err)
	}
	if gateFailed {
		for _, g := range s.Gates {
			if g.Pass {
				continue
			}
			if g.MinSpeedup > 0 {
				fmt.Fprintf(os.Stderr, "benchjson: gate %s FAILED: speedup %.1fx below min %.1fx (%s vs %s)\n",
					g.Name, g.SpeedupX, g.MinSpeedup, g.On, g.Off)
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: gate %s FAILED: overhead %.2f%% exceeds max %.2f%% (%s vs %s)\n",
					g.Name, g.OverheadPct, g.MaxPct, g.On, g.Off)
			}
		}
		os.Exit(1)
	}
}

// evalGate resolves one gate spec against the aggregated benchmarks.
func evalGate(benches []result, spec gateSpec) (gate, error) {
	off, on := find(benches, spec.off), find(benches, spec.on)
	if off == nil || on == nil {
		return gate{}, fmt.Errorf("gate %s: pair %q/%q not found in results", spec.name, spec.off, spec.on)
	}
	g := gate{
		Name:     spec.name,
		Off:      off.Name,
		On:       on.Name,
		OffNsMin: off.NsPerOpMin,
		OnNsMin:  on.NsPerOpMin,
		Enforced: spec.enforced,
	}
	if spec.speedup {
		g.SpeedupX = off.NsPerOpMin / on.NsPerOpMin
		g.MinSpeedup = spec.minSpeedup
		g.Pass = g.SpeedupX >= g.MinSpeedup
		return g, nil
	}
	g.OverheadPct = 100 * (on.NsPerOpMin - off.NsPerOpMin) / off.NsPerOpMin
	g.MaxPct = spec.maxPct
	if spec.paired != "" {
		p := find(benches, spec.paired)
		if p == nil {
			return gate{}, fmt.Errorf("gate %s: paired benchmark %q not found in results", spec.name, spec.paired)
		}
		g.PairedBench = p.Name
		g.OverheadPct = p.OverheadPct
	}
	g.Pass = !g.Enforced || g.OverheadPct <= g.MaxPct
	return g, nil
}

// parseLine matches `BenchmarkName-8   100  12345 ns/op [ 67 B/op  8 allocs/op ]`.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: name, Runs: 1, Iterations: iters}
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOpMin, res.NsPerOpMean, ok = v, v, true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		case "overhead-pct":
			res.OverheadPct = v
		}
	}
	return res, ok
}

// loadSummary reads one of benchjson's own JSON summaries back.
func loadSummary(path string) (*summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in summary", path)
	}
	return &s, nil
}

// compareSummaries prints the per-benchmark delta table (min ns/op, the
// noise-floor estimator) and reports whether any benchmark present in both
// summaries slowed down by at least threshold percent. Benchmarks only in
// one summary are noted but never fail the gate.
func compareSummaries(w io.Writer, old, new_ *summary, threshold float64) bool {
	oldBy := make(map[string]result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]result, len(new_.Benchmarks))
	for _, r := range new_.Benchmarks {
		newBy[r.Name] = r
	}

	regressed := false
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, nr := range new_.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %9s\n", nr.Name, "-", nr.NsPerOpMin, "new")
			continue
		}
		delta := 100 * (nr.NsPerOpMin - or.NsPerOpMin) / or.NsPerOpMin
		mark := ""
		if delta >= threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+8.1f%%%s\n",
			nr.Name, or.NsPerOpMin, nr.NsPerOpMin, delta, mark)
	}
	for _, or := range old.Benchmarks {
		if _, ok := newBy[or.Name]; !ok {
			fmt.Fprintf(w, "%-52s %14.0f %14s %9s\n", or.Name, or.NsPerOpMin, "-", "gone")
		}
	}
	if regressed {
		fmt.Fprintf(w, "\nFAIL: at least one benchmark regressed >= %.1f%%\n", threshold)
	} else {
		fmt.Fprintf(w, "\nOK: no benchmark regressed >= %.1f%%\n", threshold)
	}
	return regressed
}

func find(rs []result, substr string) *result {
	for i := range rs {
		if strings.Contains(rs[i].Name, substr) {
			return &rs[i]
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
