package main

import "testing"

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkEvaluateGrid36-8   \t 597\t   1839751 ns/op\t  605247 B/op\t    3959 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if res.Name != "BenchmarkEvaluateGrid36" {
		t.Errorf("name = %q, want procs suffix stripped", res.Name)
	}
	if res.Iterations != 597 || res.NsPerOpMin != 1839751 || res.BytesPerOp != 605247 || res.AllocsPerOp != 3959 {
		t.Errorf("parsed %+v", res)
	}

	// No -procs suffix, ns/op only.
	res, ok = parseLine("BenchmarkCounterAdd 	1000000	 12.5 ns/op")
	if !ok || res.Name != "BenchmarkCounterAdd" || res.NsPerOpMin != 12.5 {
		t.Errorf("parsed %+v ok=%v", res, ok)
	}

	for _, line := range []string{
		"ok  \triskroute/internal/core\t8.271s",
		"PASS",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"goos: linux",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-result line parsed as benchmark: %q", line)
		}
	}
}
