package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkEvaluateGrid36-8   \t 597\t   1839751 ns/op\t  605247 B/op\t    3959 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if res.Name != "BenchmarkEvaluateGrid36" {
		t.Errorf("name = %q, want procs suffix stripped", res.Name)
	}
	if res.Iterations != 597 || res.NsPerOpMin != 1839751 || res.BytesPerOp != 605247 || res.AllocsPerOp != 3959 {
		t.Errorf("parsed %+v", res)
	}

	// No -procs suffix, ns/op only.
	res, ok = parseLine("BenchmarkCounterAdd 	1000000	 12.5 ns/op")
	if !ok || res.Name != "BenchmarkCounterAdd" || res.NsPerOpMin != 12.5 {
		t.Errorf("parsed %+v ok=%v", res, ok)
	}

	// Paired-interleave benchmark publishing its own overhead ratio via
	// ReportMetric; unknown units (delta-ns/req) are ignored.
	res, ok = parseLine("BenchmarkRouteTracingPaired-8 	1844	 1384916 ns/op	 494.9 delta-ns/req	 2.314 overhead-pct")
	if !ok || res.Name != "BenchmarkRouteTracingPaired" || res.OverheadPct != 2.314 {
		t.Errorf("parsed %+v ok=%v", res, ok)
	}
	if res.NsPerOpMin != 1384916 {
		t.Errorf("ns/op = %v alongside custom metrics", res.NsPerOpMin)
	}

	for _, line := range []string{
		"ok  \triskroute/internal/core\t8.271s",
		"PASS",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"goos: linux",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-result line parsed as benchmark: %q", line)
		}
	}
}

func mkSummary(pairs map[string]float64) *summary {
	s := &summary{}
	var names []string
	for n := range pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Benchmarks = append(s.Benchmarks, result{Name: n, Runs: 1, NsPerOpMin: pairs[n], NsPerOpMean: pairs[n]})
	}
	return s
}

func TestCompareSummariesRegression(t *testing.T) {
	old := mkSummary(map[string]float64{
		"BenchmarkEvaluate": 1000,
		"BenchmarkParse":    500,
	})
	// Evaluate slowed 20% — at a 10% threshold that's a regression.
	slow := mkSummary(map[string]float64{
		"BenchmarkEvaluate": 1200,
		"BenchmarkParse":    505,
	})
	var buf bytes.Buffer
	if !compareSummaries(&buf, old, slow, 10) {
		t.Fatalf("20%% slowdown at 10%% threshold should regress:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL") {
		t.Fatalf("output missing regression markers:\n%s", out)
	}
	if !strings.Contains(out, "+20.0%") {
		t.Fatalf("output missing delta:\n%s", out)
	}

	// Same files at a looser threshold: clean.
	buf.Reset()
	if compareSummaries(&buf, old, slow, 25) {
		t.Fatalf("20%% slowdown at 25%% threshold should pass:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "OK:") {
		t.Fatalf("clean compare should say OK:\n%s", buf.String())
	}
}

func TestCompareSummariesNewAndGone(t *testing.T) {
	old := mkSummary(map[string]float64{
		"BenchmarkKept":    100,
		"BenchmarkRemoved": 100,
	})
	cur := mkSummary(map[string]float64{
		"BenchmarkKept":  99,
		"BenchmarkAdded": 1e9, // huge, but new benchmarks never fail the gate
	})
	var buf bytes.Buffer
	if compareSummaries(&buf, old, cur, 10) {
		t.Fatalf("added/removed benchmarks must not trip the gate:\n%s", buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "new") || !strings.Contains(out, "gone") {
		t.Fatalf("output should note new and gone rows:\n%s", out)
	}
}

func TestLoadSummary(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data, _ := json.Marshal(mkSummary(map[string]float64{"BenchmarkX": 10}))
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := loadSummary(good)
	if err != nil || len(s.Benchmarks) != 1 {
		t.Fatalf("loadSummary: %v %+v", err, s)
	}

	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"benchmarks":[]}`), 0o644)
	if _, err := loadSummary(empty); err == nil {
		t.Fatal("empty summary should be an error")
	}
	if _, err := loadSummary(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file should be an error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := loadSummary(bad); err == nil {
		t.Fatal("malformed JSON should be an error")
	}
}

func TestGateFlagParsing(t *testing.T) {
	var g gateFlags
	if err := g.Set("explain=RouteExplainOff/RouteExplainOn/RouteExplainPaired@1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Set("tracing=TracingOff/TracingOn"); err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Fatalf("%d gates parsed", len(g))
	}
	full := g[0]
	if full.name != "explain" || full.off != "RouteExplainOff" || full.on != "RouteExplainOn" ||
		full.paired != "RouteExplainPaired" || !full.enforced || full.maxPct != 1 {
		t.Fatalf("parsed %+v", full)
	}
	loose := g[1]
	if loose.name != "tracing" || loose.paired != "" || loose.enforced {
		t.Fatalf("parsed %+v", loose)
	}
	if err := g.Set("coldstart=ColdStartFit/ColdStartSnapshot@x20"); err != nil {
		t.Fatal(err)
	}
	speedup := g[2]
	if speedup.name != "coldstart" || !speedup.speedup || speedup.minSpeedup != 20 ||
		!speedup.enforced || speedup.maxPct != 0 {
		t.Fatalf("parsed %+v", speedup)
	}
	for _, bad := range []string{"", "noequals", "x=", "x=only-off", "x=a/b/c/d", "x=a/b@notanumber",
		"x=a/b@x", "x=a/b@xzero", "x=a/b@x0", "x=a/b@x-3"} {
		if err := g.Set(bad); err == nil {
			t.Errorf("gate %q parsed, want error", bad)
		}
	}
}

func TestEvalSpeedupGate(t *testing.T) {
	benches := []result{
		{Name: "BenchmarkColdStartFit", NsPerOpMin: 2_200_000_000},
		{Name: "BenchmarkColdStartSnapshot", NsPerOpMin: 40_000_000},
	}

	// 55x measured against a 20x floor passes.
	g, err := evalGate(benches, gateSpec{name: "coldstart",
		off: "ColdStartFit", on: "ColdStartSnapshot",
		minSpeedup: 20, speedup: true, enforced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Pass || g.SpeedupX != 55 || g.MinSpeedup != 20 || g.OverheadPct != 0 {
		t.Fatalf("gate %+v", g)
	}

	// Below the floor fails.
	slow := []result{
		{Name: "BenchmarkColdStartFit", NsPerOpMin: 100_000_000},
		{Name: "BenchmarkColdStartSnapshot", NsPerOpMin: 40_000_000},
	}
	g, err = evalGate(slow, gateSpec{name: "coldstart",
		off: "ColdStartFit", on: "ColdStartSnapshot",
		minSpeedup: 20, speedup: true, enforced: true})
	if err != nil || g.Pass {
		t.Fatalf("2.5x speedup passed a 20x floor: %+v err=%v", g, err)
	}
}

func TestEvalGate(t *testing.T) {
	benches := []result{
		{Name: "BenchmarkRouteExplainOff", NsPerOpMin: 1000},
		{Name: "BenchmarkRouteExplainOn", NsPerOpMin: 1005},
		{Name: "BenchmarkRouteExplainPaired", NsPerOpMin: 64000, OverheadPct: 0.4},
	}

	// Paired metric overrides the min quotient; under budget passes.
	g, err := evalGate(benches, gateSpec{name: "explain",
		off: "RouteExplainOff", on: "RouteExplainOn", paired: "RouteExplainPaired",
		maxPct: 1, enforced: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.OverheadPct != 0.4 || g.PairedBench != "BenchmarkRouteExplainPaired" || !g.Pass {
		t.Fatalf("gate %+v", g)
	}

	// Without the paired bench the min quotient applies: 0.5% under a 1% max.
	g, err = evalGate(benches, gateSpec{name: "explain",
		off: "RouteExplainOff", on: "RouteExplainOn", maxPct: 1, enforced: true})
	if err != nil || !g.Pass || g.OverheadPct != 0.5 {
		t.Fatalf("quotient gate %+v err=%v", g, err)
	}

	// Over budget fails.
	over := []result{
		{Name: "BenchmarkRouteExplainOff", NsPerOpMin: 1000},
		{Name: "BenchmarkRouteExplainOn", NsPerOpMin: 1100},
	}
	g, err = evalGate(over, gateSpec{name: "explain",
		off: "RouteExplainOff", on: "RouteExplainOn", maxPct: 1, enforced: true})
	if err != nil || g.Pass {
		t.Fatalf("10%% overhead passed a 1%% gate: %+v err=%v", g, err)
	}

	// Unenforced gates always pass (reporting only).
	g, err = evalGate(over, gateSpec{name: "explain",
		off: "RouteExplainOff", on: "RouteExplainOn"})
	if err != nil || !g.Pass || g.Enforced {
		t.Fatalf("unenforced gate %+v err=%v", g, err)
	}

	// Missing benchmarks are hard errors.
	if _, err := evalGate(benches, gateSpec{name: "x", off: "Nope", on: "RouteExplainOn"}); err == nil {
		t.Fatal("missing off benchmark should error")
	}
	if _, err := evalGate(benches, gateSpec{name: "x",
		off: "RouteExplainOff", on: "RouteExplainOn", paired: "Nope"}); err == nil {
		t.Fatal("missing paired benchmark should error")
	}
}
