// Command experiments regenerates the tables and figures of the RiskRoute
// paper's evaluation section. With no flags it runs everything at full
// scale; -run selects one experiment, -fast trades fidelity for speed.
//
//	experiments -run table2
//	experiments -run figure12 -storm Sandy
//	experiments -fast
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"riskroute"
)

func main() {
	run := flag.String("run", "all",
		"experiment to run: table1|table2|table3|figure1..figure13|extras|all")
	storm := flag.String("storm", "", "storm for figure12/figure13 (Irene, Katrina, Sandy); empty = all three")
	fast := flag.Bool("fast", false, "reduced-scale world (quicker, coarser)")
	blocks := flag.Int("blocks", 0, "census blocks (0 = default)")
	eventScale := flag.Float64("event-scale", 0, "disaster catalog scale (0 = default 1.0)")
	stride := flag.Int("stride", 0, "advisory stride for replays (0 = default 5)")
	seed := flag.Uint64("seed", 0, "world seed (0 = default 1)")
	workers := flag.Int("workers", 0,
		"max goroutines for parallel stages (0 = all cores, 1 = sequential); results are identical at any setting")
	logMode := flag.String("log", "off", "structured log stream to stderr: text, json, or off")
	traceOut := flag.String("trace-out", "", "write the run's trace as Chrome trace-event JSON to `file`")
	runsDir := flag.String("runs", "", "write a run manifest under `dir`/<runID>/")
	flag.Parse()

	cfg := riskroute.LabConfig{
		CensusBlocks: *blocks,
		EventScale:   *eventScale,
		ReplayStride: *stride,
		Seed:         *seed,
		Workers:      *workers,
	}
	if *fast {
		if cfg.CensusBlocks == 0 {
			cfg.CensusBlocks = 6000
		}
		if cfg.EventScale == 0 {
			cfg.EventScale = 0.1
		}
		if cfg.ReplayStride == 0 {
			cfg.ReplayStride = 10
		}
		cfg.MaxEventsPerCatalog = 4000
		cfg.CellMiles = 30
		cfg.CVCandidates = 10
		cfg.CVMaxEvents = 800
	}

	// Observability: any of -log/-trace-out/-runs arms the full stack so
	// the run's logs, trace, and manifest describe the same execution.
	obsArmed := *logMode != "off" || *traceOut != "" || *runsDir != ""
	var (
		trace  *riskroute.Span
		flight *riskroute.FlightRecorder
	)
	if obsArmed {
		cfg.Metrics = riskroute.NewMetrics()
		trace = riskroute.NewTrace("experiments")
		cfg.Trace = trace
		flight = riskroute.NewFlightRecorder(0)
		h, err := riskroute.NewLogHandler(*logMode, os.Stderr)
		if err != nil {
			fatal(err)
		}
		cfg.Logger = slog.New(flight.Wrap(h))
	}
	if *runsDir != "" {
		led, err := riskroute.NewRunLedger(*runsDir, "experiments", os.Args[1:])
		if err != nil {
			fatal(err)
		}
		led.AttachFlight(flight)
		led.SetConfig("run", *run)
		led.SetConfig("storm", *storm)
		led.SetConfig("fast", *fast)
		cfg.Ledger = led
	}
	// finish drains the observability stack exactly once, on every exit
	// path: Chrome trace export and the run manifest with exit status.
	finish := func(runErr error) {
		trace.End()
		if *traceOut != "" {
			if err := riskroute.ExportChromeTrace(*traceOut, trace); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace export:", err)
			} else {
				fmt.Fprintf(os.Stderr, "experiments: wrote trace to %s\n", *traceOut)
			}
		}
		if cfg.Ledger != nil {
			if err := cfg.Ledger.Finish(trace, cfg.Metrics, runErr); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: run ledger:", err)
			} else {
				fmt.Fprintf(os.Stderr, "experiments: wrote run manifest to %s/manifest.json\n",
					cfg.Ledger.Dir())
			}
		}
	}

	fmt.Fprintln(os.Stderr, "building experiment world...")
	lab, err := riskroute.NewLab(cfg)
	if err != nil {
		finish(err)
		fatal(err)
	}

	storms := []string{"Irene", "Katrina", "Sandy"}
	if *storm != "" {
		storms = []string{*storm}
	}

	runOne := func(id string) error {
		switch id {
		case "table1":
			r, err := lab.Table1()
			if err != nil {
				return err
			}
			return experimentsRenderTable1(r)
		case "table2":
			r, err := lab.Table2()
			if err != nil {
				return err
			}
			return experimentsRenderTable2(r)
		case "table3":
			r, err := lab.Table3()
			if err != nil {
				return err
			}
			return experimentsRenderTable3(r)
		case "figure1":
			r, err := lab.Figure1()
			if err != nil {
				return err
			}
			return experimentsRenderFigure1(r)
		case "figure2":
			r, err := lab.Figure2()
			if err != nil {
				return err
			}
			return experimentsRenderFigure2(r)
		case "figure3":
			r, err := lab.Figure3()
			if err != nil {
				return err
			}
			return experimentsRenderFigure3(r)
		case "figure4":
			r, err := lab.Figure4()
			if err != nil {
				return err
			}
			return experimentsRenderFigure4(r)
		case "figure5":
			r, err := lab.Figure5()
			if err != nil {
				return err
			}
			return experimentsRenderFigure5(r)
		case "figure6":
			r, err := lab.Figure6()
			if err != nil {
				return err
			}
			return experimentsRenderFigure6(r)
		case "figure7":
			r, err := lab.Figure7()
			if err != nil {
				return err
			}
			return experimentsRenderFigure7(r)
		case "figure8":
			r, err := lab.Figure8()
			if err != nil {
				return err
			}
			return experimentsRenderFigure8(r)
		case "figure9":
			for _, name := range []string{"Level3", "AT&T", "Tinet"} {
				r, err := lab.Figure9(name, 10)
				if err != nil {
					return err
				}
				if err := experimentsRenderFigure9(r); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		case "figure10":
			r, err := lab.Figure10(8)
			if err != nil {
				return err
			}
			return experimentsRenderFigure10(r)
		case "figure11":
			r, err := lab.Figure11()
			if err != nil {
				return err
			}
			return experimentsRenderFigure11(r)
		case "figure12":
			for _, s := range storms {
				r, err := lab.Figure12(s)
				if err != nil {
					return err
				}
				if err := experimentsRenderReplay("Figure 12", r); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		case "extras":
			r, err := lab.Extras()
			if err != nil {
				return err
			}
			return experimentsRenderExtras(r)
		case "figure13":
			for _, s := range storms {
				r, err := lab.Figure13(s)
				if err != nil {
					return err
				}
				if err := experimentsRenderReplay("Figure 13", r); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = []string{
			"table1", "table2", "table3",
			"figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
			"figure7", "figure8", "figure9", "figure10", "figure11",
			"figure12", "figure13", "extras",
		}
	}
	for _, id := range ids {
		fmt.Fprintf(os.Stderr, "running %s...\n", id)
		fmt.Printf("==== %s ====\n", strings.ToUpper(id))
		if err := runOne(id); err != nil {
			finish(err)
			fatal(err)
		}
		fmt.Println()
	}
	finish(nil)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
