package main

import (
	"os"

	"riskroute/internal/experiments"
)

// Thin stdout shims over the experiments renderers keep main's switch terse.

func experimentsRenderTable1(r *experiments.Table1Result) error {
	return experiments.RenderTable1(os.Stdout, r)
}

func experimentsRenderTable2(r *experiments.Table2Result) error {
	return experiments.RenderTable2(os.Stdout, r)
}

func experimentsRenderTable3(r *experiments.Table3Result) error {
	return experiments.RenderTable3(os.Stdout, r)
}

func experimentsRenderFigure1(r *experiments.Figure1Result) error {
	return experiments.RenderFigure1(os.Stdout, r)
}

func experimentsRenderFigure2(r *experiments.Figure2Result) error {
	return experiments.RenderFigure2(os.Stdout, r)
}

func experimentsRenderFigure3(r *experiments.Figure3Result) error {
	return experiments.RenderFigure3(os.Stdout, r)
}

func experimentsRenderFigure4(r *experiments.Figure4Result) error {
	return experiments.RenderFigure4(os.Stdout, r)
}

func experimentsRenderFigure5(r *experiments.Figure5Result) error {
	return experiments.RenderFigure5(os.Stdout, r)
}

func experimentsRenderFigure6(r *experiments.Figure6Result) error {
	return experiments.RenderFigure6(os.Stdout, r)
}

func experimentsRenderFigure7(r *experiments.Figure7Result) error {
	return experiments.RenderFigure7(os.Stdout, r)
}

func experimentsRenderFigure8(r *experiments.Figure8Result) error {
	return experiments.RenderFigure8(os.Stdout, r)
}

func experimentsRenderFigure9(r *experiments.Figure9Result) error {
	return experiments.RenderFigure9(os.Stdout, r)
}

func experimentsRenderFigure10(r *experiments.Figure10Result) error {
	return experiments.RenderFigure10(os.Stdout, r)
}

func experimentsRenderFigure11(r *experiments.Figure11Result) error {
	return experiments.RenderFigure11(os.Stdout, r)
}

func experimentsRenderReplay(title string, r *experiments.ReplayResult) error {
	return experiments.RenderReplay(os.Stdout, title, r)
}

func experimentsRenderExtras(r *experiments.ExtrasResult) error {
	return experiments.RenderExtras(os.Stdout, r)
}
