package main

import (
	"flag"
	"fmt"
	"os"

	"riskroute"
)

// cmdCheck diagnoses pipeline inputs and reports degraded-mode health:
//
//	riskroute check -topology nets.txt          lenient topology diagnosis
//	riskroute check -topology nets.txt -strict  fail on the first corrupt line
//	riskroute check -storm Sandy -corrupt-rate 0.3 -fault-seed 7
//	riskroute check -network Level3 -drop-layer 2
//
// The last form runs the full pipeline (hazard fit, population assignment,
// engine build) in lenient mode and prints the health report; -drop-layer
// injects a fault into one hazard catalog to exercise re-normalization.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	w := addWorldFlags(fs)
	strict := fs.Bool("strict", false, "fail on the first corrupt input instead of degrading")
	storm := fs.String("storm", "", "storm whose advisory corpus to diagnose (Irene, Katrina, Sandy)")
	corruptRate := fs.Float64("corrupt-rate", 0, "fraction of advisories to corrupt before parsing")
	faultSeed := fs.Uint64("fault-seed", 1, "fault-injection seed (same seed, same faults)")
	network := fs.String("network", "Level3", "network for the full-pipeline check")
	dropLayer := fs.Int("drop-layer", -1, "inject a fault into hazard catalog N (0-4, -1 = none)")
	fs.Parse(args)

	switch {
	case w.topoFile != "":
		return checkTopologyFile(w.topoFile, *strict)
	case *storm != "":
		return checkStorm(*storm, *corruptRate, *faultSeed)
	default:
		return checkPipeline(w, *network, *dropLayer, *faultSeed)
	}
}

func checkTopologyFile(path string, strict bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strict {
		nets, err := riskroute.ParseTopology(f)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d networks, no defects (strict)\n", path, len(nets))
		return nil
	}
	nets, health, err := riskroute.CheckTopology(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d networks survive lenient parse\n", path, len(nets))
	for _, n := range nets {
		fmt.Printf("  %-14s %-8s %3d PoPs  %3d links\n", n.Name, n.Tier, len(n.PoPs), len(n.Links))
	}
	printHealth(health)
	return nil
}

func checkStorm(storm string, corruptRate float64, seed uint64) error {
	track := riskroute.HurricaneByName(storm)
	if track == nil {
		return fmt.Errorf("unknown storm %q", storm)
	}
	texts := riskroute.AdvisoryCorpus(track)
	var inj *riskroute.Injector
	if corruptRate > 0 {
		inj = riskroute.NewInjector(seed).
			Enable(riskroute.InjectAdvisoryParse, riskroute.FaultCorrupt, corruptRate)
	}
	replay, health, err := riskroute.CheckAdvisoryCorpus(storm, texts, inj)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d of %d advisories in replay, %d carried forward\n",
		storm, len(replay.Advisories), len(texts), replay.CarriedCount())
	printHealth(health)
	return nil
}

func checkPipeline(w *worldFlags, network string, dropLayer int, seed uint64) error {
	// The shared health funnel: degraded events surface as
	// pipeline.<stage>.<severity>_total counters in the exit report, leveled
	// log records under -log, and the -runs manifest's degraded summary.
	tel.ensure()
	health := tel.health
	var inj *riskroute.Injector
	if dropLayer >= 0 {
		inj = riskroute.NewInjector(seed).
			EnableKeys(riskroute.InjectKDEFit, riskroute.FaultForceError, uint64(dropLayer))
	}
	net, err := w.network(network)
	if err != nil {
		return err
	}
	model, err := riskroute.FitHazard(riskroute.SyntheticHazardSources(w.eventScale, seedFlag),
		riskroute.HazardFitConfig{Lenient: true, Injector: inj, Health: health,
			Metrics: tel.reg, Trace: tel.trace, Logger: tel.logger})
	if err != nil {
		return err
	}
	census := riskroute.SyntheticCensus(w.blocks, seedFlag)
	asg, err := riskroute.AssignPopulationWorkers(census, net, workersFlag)
	if err != nil {
		return err
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.PaperParams(),
	}
	opts := telOptions()
	opts.Injector = inj
	opts.Health = health
	e, err := riskroute.NewEngine(ctx, opts)
	if err != nil {
		return err
	}
	r := e.Evaluate()
	fmt.Printf("%s pipeline: %d hazard layers fitted", net.Name, len(model.Sources))
	if len(model.Lost) > 0 {
		fmt.Printf(" (%d lost, aggregate re-normalized by %.2f)", len(model.Lost), model.Renorm())
	}
	fmt.Printf(", %d pairs evaluated, risk reduction %.3f\n", r.Pairs, r.RiskReduction)
	printHealth(health)
	return nil
}

func printHealth(h *riskroute.PipelineHealth) {
	status := "OK"
	if h.Degraded() {
		status = "DEGRADED"
	}
	fmt.Printf("pipeline health: %s\n%s", status, h)
}
