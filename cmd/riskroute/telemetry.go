package main

import (
	"flag"
	"fmt"
	"os"

	"riskroute"
)

// telemetryState is the process-wide telemetry wiring every subcommand
// shares. The CLI runs exactly one command per process, so a single global —
// armed by flags at parse time, drained by telemetryFinish on the way out —
// keeps the sixteen subcommands free of plumbing. When no telemetry flag is
// given, reg and trace stay nil and the whole pipeline runs with nil-handle
// no-ops.
type telemetryState struct {
	cmd     string // subcommand name, becomes the root span's name
	mode    string // "", "off", "text", or "json": exit-report format
	reg     *riskroute.Metrics
	trace   *riskroute.Span
	cpuStop func() error
	memPath string
	debug   *riskroute.DebugServer
}

var tel telemetryState

// ensure lazily creates the registry and root trace (idempotent). Any
// telemetry flag arms collection; `riskroute stats` arms it unconditionally.
func (t *telemetryState) ensure() {
	if t.reg == nil {
		t.reg = riskroute.NewMetrics()
		name := t.cmd
		if name == "" {
			name = "riskroute"
		}
		t.trace = riskroute.NewTrace(name)
	}
}

// options returns engine options pre-wired with the session's telemetry
// (zero options when telemetry is off — both fields are nil-safe).
func telOptions() riskroute.Options {
	return riskroute.Options{Metrics: tel.reg, Trace: tel.trace}
}

// addTelemetryFlags registers the global telemetry flags on a subcommand's
// flag set. flag.Func runs at parse time, so profiling and the debug
// listener start before the command body does any work.
func addTelemetryFlags(fs *flag.FlagSet) {
	fs.Func("telemetry", "emit a telemetry report to stderr on exit: text, json, or off", func(v string) error {
		switch v {
		case "off":
			tel.mode = "off"
			return nil
		case "text", "json":
			tel.mode = v
			tel.ensure()
			return nil
		default:
			return fmt.Errorf("unknown telemetry format %q (want text, json, or off)", v)
		}
	})
	fs.Func("cpuprofile", "write a CPU profile of the run to `file`", func(path string) error {
		tel.ensure()
		stop, err := riskroute.StartCPUProfile(path)
		if err != nil {
			return err
		}
		tel.cpuStop = stop
		return nil
	})
	fs.Func("memprofile", "write a heap profile at exit to `file`", func(path string) error {
		tel.ensure()
		tel.memPath = path
		return nil
	})
	fs.Func("debug-addr", "serve expvar, net/http/pprof, and /telemetry on `addr` (e.g. localhost:6060)", func(addr string) error {
		tel.ensure()
		srv, err := riskroute.ServeDebug(addr, tel.reg)
		if err != nil {
			return err
		}
		tel.debug = srv
		fmt.Fprintf(os.Stderr, "riskroute: debug listener on http://%s/debug/pprof/\n", srv.Addr())
		return nil
	})
}

// telemetryFinish stops profilers, closes the debug listener, and emits the
// exit report. Called once from main after the command returns; errors here
// must not mask the command's own outcome, so they go to stderr.
func telemetryFinish() {
	if tel.cpuStop != nil {
		if err := tel.cpuStop(); err != nil {
			fmt.Fprintln(os.Stderr, "riskroute: cpu profile:", err)
		}
	}
	if tel.memPath != "" {
		if err := riskroute.WriteHeapProfile(tel.memPath); err != nil {
			fmt.Fprintln(os.Stderr, "riskroute: heap profile:", err)
		}
	}
	if tel.debug != nil {
		tel.debug.Close()
	}
	if tel.mode != "text" && tel.mode != "json" {
		return
	}
	tel.trace.End()
	riskroute.CaptureRuntime(tel.reg)
	rep := riskroute.BuildTelemetryReport(tel.reg, tel.trace)
	var err error
	if tel.mode == "json" {
		err = rep.WriteJSON(os.Stderr)
	} else {
		err = rep.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "riskroute: telemetry report:", err)
	}
}
