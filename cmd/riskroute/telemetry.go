package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"

	"riskroute"
)

// telemetryState is the process-wide observability wiring every subcommand
// shares. The CLI runs exactly one command per process, so a single global —
// armed by flags at parse time, drained by telemetryFinish on the way out —
// keeps the seventeen subcommands free of plumbing. When no observability
// flag is given, everything stays nil and the whole pipeline runs with
// nil-handle no-ops.
type telemetryState struct {
	cmd      string        // subcommand name, becomes the root span's name
	mode     string        // "", "off", "text", or "json": exit-report format
	fs       *flag.FlagSet // the command's flag set, for manifest config capture
	reg      *riskroute.Metrics
	trace    *riskroute.Span
	health   *riskroute.PipelineHealth
	logger   *slog.Logger
	flight   *riskroute.FlightRecorder
	ledger   *riskroute.RunLedger
	traceOut string
	cpuStop  func() error
	memPath  string
	debug    *riskroute.DebugServer
}

var tel telemetryState

// workersFlag is the global -workers bound shared by every subcommand: it
// caps the goroutines of hazard fitting, population assignment, and the
// routing engine (0 = GOMAXPROCS, 1 = sequential). All parallel stages are
// bit-deterministic, so the flag steers speed, never results.
var workersFlag int

// seedFlag is the global -seed shared by every subcommand: it drives the
// synthetic world (hazard catalogs, census) and the scenario-ensemble
// streams. The default is a fixed constant — never wall clock — so two runs
// with the same flags are byte-identical; unlike the observability flags it
// IS part of the computation and is recorded in the run manifest.
var seedFlag uint64

// ensure lazily creates the registry, root trace, health funnel, flight
// recorder, and ring-only logger (idempotent). Any observability flag arms
// collection; `riskroute stats` and `riskroute check` arm it unconditionally.
func (t *telemetryState) ensure() {
	if t.reg != nil {
		return
	}
	t.reg = riskroute.NewMetrics()
	name := t.cmd
	if name == "" {
		name = "riskroute"
	}
	t.trace = riskroute.NewTrace(name)
	t.flight = riskroute.NewFlightRecorder(0)
	// Ring-only until -log arms a sink: the flight recorder captures the
	// tail regardless of log mode, so an error dump works with -log off.
	t.logger = slog.New(t.flight.Wrap(nil))
	t.health = riskroute.NewPipelineHealth()
	t.health.AttachMetrics(t.reg)
	t.health.AttachLogger(t.logger)
}

// options returns engine options pre-wired with the session's telemetry
// (zero options when telemetry is off — every field is nil-safe).
func telOptions() riskroute.Options {
	return riskroute.Options{
		Workers: workersFlag,
		Metrics: tel.reg,
		Trace:   tel.trace,
		Health:  tel.health,
		Logger:  tel.logger,
	}
}

// addTelemetryFlags registers the global observability flags on a
// subcommand's flag set. flag.Func runs at parse time, so logging,
// profiling, the ledger, and the debug listener start before the command
// body does any work.
func addTelemetryFlags(fs *flag.FlagSet) {
	tel.fs = fs
	fs.IntVar(&workersFlag, "workers", 0,
		"max goroutines for parallel stages (0 = all cores, 1 = sequential); results are identical at any setting")
	fs.Uint64Var(&seedFlag, "seed", 1,
		"deterministic seed for the synthetic world and scenario ensembles (fixed constant, never wall clock)")
	fs.Func("telemetry", "emit a telemetry report to stderr on exit: text, json, or off", func(v string) error {
		switch v {
		case "off":
			tel.mode = "off"
			return nil
		case "text", "json":
			tel.mode = v
			tel.ensure()
			return nil
		default:
			return fmt.Errorf("unknown telemetry format %q (want text, json, or off)", v)
		}
	})
	fs.Func("log", "structured log stream to stderr: text, json, or off", func(v string) error {
		switch v {
		case "off":
			tel.ensure() // ring-only logger stays armed for the flight dump
			return nil
		case "text", "json":
			tel.ensure()
			h, err := riskroute.NewLogHandler(v, os.Stderr)
			if err != nil {
				return err
			}
			tel.logger = slog.New(tel.flight.Wrap(h))
			tel.health.AttachLogger(tel.logger)
			return nil
		default:
			return fmt.Errorf("unknown log format %q (want text, json, or off)", v)
		}
	})
	fs.Func("trace-out", "write the run's span tree as Chrome trace-event JSON to `file` on exit", func(path string) error {
		tel.ensure()
		tel.traceOut = path
		return nil
	})
	fs.Func("runs", "write a run manifest (config, input checksums, timings) under `dir`/<runID>/", func(dir string) error {
		tel.ensure()
		led, err := riskroute.NewRunLedger(dir, tel.cmd, os.Args[2:])
		if err != nil {
			return err
		}
		led.AttachFlight(tel.flight)
		tel.ledger = led
		return nil
	})
	fs.Func("cpuprofile", "write a CPU profile of the run to `file`", func(path string) error {
		tel.ensure()
		stop, err := riskroute.StartCPUProfile(path)
		if err != nil {
			return err
		}
		tel.cpuStop = stop
		return nil
	})
	fs.Func("memprofile", "write a heap profile at exit to `file`", func(path string) error {
		tel.ensure()
		tel.memPath = path
		return nil
	})
	fs.Func("debug-addr", "serve expvar, net/http/pprof, and /telemetry on `addr` (e.g. localhost:6060)", func(addr string) error {
		tel.ensure()
		srv, err := riskroute.ServeDebug(addr, tel.reg)
		if err != nil {
			return err
		}
		tel.debug = srv
		fmt.Fprintf(os.Stderr, "riskroute: debug listener on http://%s/debug/pprof/\n", srv.Addr())
		return nil
	})
}

// writeTelemetryReport assembles the report — runtime capture, metrics
// snapshot, trace tree — and renders it. This is the single report-building
// path shared by the -telemetry exit report and `riskroute stats`.
func writeTelemetryReport(w io.Writer, format string) error {
	riskroute.CaptureRuntime(tel.reg)
	rep := riskroute.BuildTelemetryReport(tel.reg, tel.trace)
	if format == "json" {
		return rep.WriteJSON(w)
	}
	return rep.WriteText(w)
}

// obsFlags names the flags excluded from the manifest's config section:
// they steer observability or scheduling, not the computation (every
// parallel stage is bit-deterministic in the worker count), so two runs
// that differ only in telemetry sinks or -workers stay config-byte-equal.
var obsFlags = map[string]bool{
	"telemetry": true, "log": true, "trace-out": true, "runs": true,
	"cpuprofile": true, "memprofile": true, "debug-addr": true,
	"workers": true,
}

// ledgerFinish freezes the run manifest: config from the parsed flag set
// (defaults included, observability flags excluded), input checksums (the
// -topology file, or the embedded corpus serialized), the health report's
// degraded events, and the trace/metrics/exit status.
func ledgerFinish(cmdErr error) error {
	if tel.fs != nil {
		tel.fs.VisitAll(func(f *flag.Flag) {
			if !obsFlags[f.Name] {
				tel.ledger.SetConfig(f.Name, f.Value.String())
			}
		})
	}
	topoFile := ""
	if tel.fs != nil {
		if f := tel.fs.Lookup("topology"); f != nil {
			topoFile = f.Value.String()
		}
	}
	if topoFile != "" {
		f, err := os.Open(topoFile)
		if err != nil {
			return err
		}
		err = tel.ledger.AddInput("topology:"+topoFile, f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		pr, pw := io.Pipe()
		go func() {
			pw.CloseWithError(riskroute.WriteTopology(pw, riskroute.BuiltinNetworks()))
		}()
		if err := tel.ledger.AddInput("topology:embedded-corpus", pr); err != nil {
			return err
		}
	}
	for _, e := range tel.health.Events() {
		if sev := e.Severity.String(); sev != "ok" {
			detail := e.Detail
			if e.Err != nil {
				detail += " (" + e.Err.Error() + ")"
			}
			tel.ledger.AddDegraded(riskroute.RunEvent{
				Stage: e.Stage, Severity: sev, Detail: detail,
			})
		}
	}
	return tel.ledger.Finish(tel.trace, tel.reg, cmdErr)
}

// telemetryFinish stops profilers, closes the debug listener, and emits the
// exit artifacts: the -telemetry report, the -trace-out Chrome trace, and
// the -runs manifest. Called once from main after the command returns;
// errors here must not mask the command's own outcome, so they go to stderr.
func telemetryFinish(cmdErr error) {
	if tel.cpuStop != nil {
		if err := tel.cpuStop(); err != nil {
			fmt.Fprintln(os.Stderr, "riskroute: cpu profile:", err)
		}
	}
	if tel.memPath != "" {
		if err := riskroute.WriteHeapProfile(tel.memPath); err != nil {
			fmt.Fprintln(os.Stderr, "riskroute: heap profile:", err)
		}
	}
	if tel.debug != nil {
		tel.debug.Close()
	}
	tel.trace.End()
	if tel.mode == "text" || tel.mode == "json" {
		if err := writeTelemetryReport(os.Stderr, tel.mode); err != nil {
			fmt.Fprintln(os.Stderr, "riskroute: telemetry report:", err)
		}
	}
	if tel.traceOut != "" {
		if err := riskroute.ExportChromeTrace(tel.traceOut, tel.trace); err != nil {
			fmt.Fprintln(os.Stderr, "riskroute: trace export:", err)
		} else {
			fmt.Fprintf(os.Stderr, "riskroute: wrote trace to %s\n", tel.traceOut)
		}
	}
	if tel.ledger != nil {
		if err := ledgerFinish(cmdErr); err != nil {
			fmt.Fprintln(os.Stderr, "riskroute: run ledger:", err)
		} else {
			fmt.Fprintf(os.Stderr, "riskroute: wrote run manifest to %s\n",
				strings.TrimSuffix(tel.ledger.Dir(), "/")+"/manifest.json")
		}
	}
}
