package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// runStdout execs the CLI capturing stdout alone — byte-parity checks must
// not let stderr telemetry bleed into the compared body.
func runStdout(t *testing.T, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(binPath, args...)
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok {
			msg += "\n" + string(ee.Stderr)
		}
		t.Fatalf("riskroute %s: %s", strings.Join(args, " "), msg)
	}
	return out
}

// TestCLIExplainParity pins the tentpole's CLI/daemon byte identity: the
// explain command over the golden world (Sprint, 4000 blocks, event scale
// 0.03, seed 1) must emit exactly the bytes the daemon serves for
// /v1/route?explain=1&format=geojson — the fixture the serve package's
// golden test maintains.
func TestCLIExplainParity(t *testing.T) {
	want, err := os.ReadFile("../../internal/serve/testdata/explain_golden.geojson")
	if err != nil {
		t.Fatalf("read golden fixture (generate with go test ./internal/serve -run Golden -update-golden): %v", err)
	}
	got := runStdout(t, append(append([]string{"explain", "-network", "Sprint",
		"-format", "geojson"}, tiny...), "Atlanta", "Seattle")...)
	if string(got) != string(want) {
		t.Fatalf("CLI explain differs from daemon golden fixture (%d vs %d bytes)\ngot:\n%s",
			len(got), len(want), got)
	}
}

// TestCLIExplainJSON checks the default JSON body carries a reconciled
// attribution block.
func TestCLIExplainJSON(t *testing.T) {
	out := string(runStdout(t, append([]string{"explain", "-network", "Sprint",
		"-from", "Atlanta", "-to", "Seattle"}, tiny...)...))
	for _, want := range []string{`"explain"`, `"reconciled": true`, `"edges"`,
		`"base_risk"`, `"risk_cost"`, `"Atlanta"`} {
		if !strings.Contains(out, want) {
			t.Errorf("explain JSON missing %s:\n%s", want, out)
		}
	}
}

// TestCLIExplainStorm checks the advisory path produces forecast-layer
// attribution through the same swap machinery the daemon uses.
func TestCLIExplainStorm(t *testing.T) {
	out := string(runStdout(t, append([]string{"explain", "-network", "Sprint",
		"-from", "Miami", "-to", "Boston", "-storm", "Sandy"}, tiny...)...))
	if !strings.Contains(out, `"storm": "SANDY"`) {
		t.Errorf("storm explain missing advisory annotation:\n%s", out)
	}
	if !strings.Contains(out, `"reconciled": true`) {
		t.Errorf("storm explain did not reconcile:\n%s", out)
	}
}

func TestCLIExplainErrors(t *testing.T) {
	out := runExpectError(t, append(append([]string{"explain", "-network", "Sprint",
		"-span-risk"}, tiny...), "Atlanta", "Seattle")...)
	if !strings.Contains(out, "span-risk") {
		t.Errorf("span-risk rejection message: %s", out)
	}
	out = runExpectError(t, append(append([]string{"explain", "-network", "Sprint",
		"-format", "yaml"}, tiny...), "Atlanta", "Seattle")...)
	if !strings.Contains(out, "format") {
		t.Errorf("format rejection message: %s", out)
	}
}
