package main

import (
	"flag"
	"fmt"
	"os"

	"riskroute"
)

// cmdOutage simulates a storm knocking out every PoP inside its cumulative
// hurricane-force (optionally tropical-force) wind field and reports the
// connectivity damage — the operator-facing "what would this storm have
// done to us" analysis.
func cmdOutage(args []string) error {
	fs := flag.NewFlagSet("outage", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network name")
	storm := fs.String("storm", "Sandy", "storm name (Irene, Katrina, Sandy)")
	tropical := fs.Bool("tropical", false, "also fail PoPs under tropical-storm-force winds")
	fs.Parse(args)

	track := riskroute.HurricaneByName(*storm)
	if track == nil {
		return fmt.Errorf("unknown storm %q", *storm)
	}
	replay, err := riskroute.LoadHurricaneReplay(track)
	if err != nil {
		return err
	}
	scope := riskroute.ScopeOf(replay)

	e, net, err := engineFor(w, *network, riskroute.PaperParams(), nil)
	if err != nil {
		return err
	}
	var failed []int
	for i, p := range net.PoPs {
		switch scope.Classify(p.Location) {
		case riskroute.HurricaneForceScope:
			failed = append(failed, i)
		case riskroute.TropicalForceScope:
			if *tropical {
				failed = append(failed, i)
			}
		}
	}
	impact, err := e.SimulateOutage(failed)
	if err != nil {
		return err
	}
	fmt.Printf("%s under %s (%s winds fail PoPs):\n", net.Name, *storm, severityLabel(*tropical))
	fmt.Printf("  failed PoPs:        %d of %d\n", impact.FailedPoPs, len(net.PoPs))
	for _, i := range failed {
		fmt.Printf("    - %s\n", net.PoPs[i].Name)
	}
	fmt.Printf("  surviving pairs:    %d\n", impact.TotalPairs)
	fmt.Printf("  disconnected pairs: %d\n", impact.DisconnectedPairs)
	fmt.Printf("  rerouted pairs:     %d (mean detour %.0f mi)\n",
		impact.ReroutedPairs, impact.MeanDetourMiles)
	fmt.Printf("  stranded population: %.1f%%\n", 100*impact.StrandedPopulation)
	return nil
}

func severityLabel(tropical bool) string {
	if tropical {
		return "tropical-force and stronger"
	}
	return "hurricane-force"
}

// cmdExport dumps the embedded network corpus (or one network) in the
// native text format or Topology-Zoo GraphML, so users can edit real inputs
// for the -topology flag or feed other tools.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	addTelemetryFlags(fs)
	network := fs.String("network", "", "network to export (empty = whole corpus, native format only)")
	format := fs.String("format", "native", "output format: native|graphml")
	out := fs.String("o", "", "output file (empty = stdout)")
	fs.Parse(args)

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "native":
		nets := riskroute.BuiltinNetworks()
		if *network != "" {
			n := riskroute.BuiltinNetwork(*network)
			if n == nil {
				return fmt.Errorf("unknown network %q", *network)
			}
			nets = []*riskroute.Network{n}
		}
		return riskroute.WriteTopology(w, nets)
	case "graphml":
		if *network == "" {
			return fmt.Errorf("graphml export needs -network (one graph per document)")
		}
		n := riskroute.BuiltinNetwork(*network)
		if n == nil {
			return fmt.Errorf("unknown network %q", *network)
		}
		return riskroute.WriteGraphML(w, n)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
