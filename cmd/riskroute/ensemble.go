package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"riskroute"
)

// cmdEnsemble generates a seeded Monte-Carlo disaster ensemble and sweeps
// it through the routing engine, emitting per-network, per-family
// outage-risk distributions as JSON. The whole run is a pure function of
// -seed and the flags: output bytes are identical across runs and at any
// -workers setting.
func cmdEnsemble(args []string) error {
	fs := flag.NewFlagSet("ensemble", flag.ExitOnError)
	w := addWorldFlags(fs)
	networks := fs.String("networks", "Sprint", "comma-separated network names to evaluate")
	spec := fs.String("scenarios", "track=300,genesis=100,cut=250,disk=200,regional=150",
		"ensemble composition: family=count, families track, genesis, cut, disk, regional")
	storm := fs.String("storm", "Sandy", "base storm for the perturbed-track family (Irene, Katrina, Sandy)")
	posJitter := fs.Float64("pos-jitter", 0.75, "track position jitter σ in degrees")
	intensityJitter := fs.Float64("intensity-jitter", 0.15, "track intensity jitter σ (fraction of max wind)")
	radiusJitter := fs.Float64("radius-jitter", 0.15, "wind-radii jitter σ (fraction)")
	routePairs := fs.Int("route-pairs", 4, "PoP pairs routed per network and scenario")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	lambdaF := fs.Float64("lambda-f", 1e3, "forecast risk weight λ_f")
	fs.Parse(args)

	if w.spanRisk {
		return fmt.Errorf("ensemble evaluates per-PoP scenario overlays; -span-risk is not supported")
	}
	specs, err := riskroute.ParseScenarioSpec(*spec)
	if err != nil {
		return err
	}
	track := riskroute.HurricaneByName(*storm)
	if track == nil {
		return fmt.Errorf("unknown storm %q", *storm)
	}

	model, census, err := w.build()
	if err != nil {
		return err
	}
	var worlds []riskroute.EnsembleWorld
	for _, name := range strings.Split(*networks, ",") {
		net, err := w.network(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		asg, err := riskroute.AssignPopulationWorkers(census, net, workersFlag)
		if err != nil {
			return err
		}
		worlds = append(worlds, riskroute.EnsembleWorld{
			Net:       net,
			Hist:      model.PoPRisks(net),
			Fractions: asg.Fractions,
		})
	}

	scenarios, err := riskroute.GenerateScenarios(riskroute.ScenarioConfig{
		Seed:  seedFlag,
		Spec:  specs,
		Track: track,
		Perturb: riskroute.TrackPerturbation{
			PosDeg:        *posJitter,
			IntensityFrac: *intensityJitter,
			RadiusFrac:    *radiusJitter,
		},
		Workers: workersFlag,
		Metrics: tel.reg,
		Trace:   tel.trace,
	})
	if err != nil {
		return err
	}

	rep, err := riskroute.SweepEnsemble(scenarios, worlds, riskroute.EnsembleConfig{
		Seed:    seedFlag,
		Params:  riskroute.Params{LambdaH: *lambdaH, LambdaF: *lambdaF},
		Pairs:   *routePairs,
		Workers: workersFlag,
		Metrics: tel.reg,
		Trace:   tel.trace,
		Logger:  tel.logger,
	})
	if err != nil {
		return err
	}

	if tel.ledger != nil {
		tel.ledger.SetConfig("ensemble-seed", seedFlag)
		tel.ledger.SetConfig("ensemble-scenarios", riskroute.FormatScenarioSpec(specs))
		tel.ledger.SetConfig("ensemble-count", rep.Scenarios)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
