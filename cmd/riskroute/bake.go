package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"riskroute"
)

// cmdBake runs the full offline pipeline — hazard fit, census generation,
// per-network population assignment and historical PoP risks — and persists
// the result as a versioned, checksummed binary world snapshot:
//
//	riskroute bake -o world.rrws
//	riskroute bake -o sprint.rrws -networks Sprint -blocks 4000 -event-scale 0.03
//	riskrouted -world-snapshot world.rrws   # boots in milliseconds
//
// The bake shares the serving daemon's warmup pipeline, so a daemon booted
// from the snapshot serves generation 1 bit-identical to one that fitted
// from scratch with the same -blocks / -event-scale / -seed / network set.
// The output is byte-deterministic: same inputs, same bytes, same digest.
func cmdBake(args []string) error {
	fs := flag.NewFlagSet("bake", flag.ExitOnError)
	w := addWorldFlags(fs)
	out := fs.String("o", "world.rrws", "output snapshot file (written atomically)")
	networks := fs.String("networks", "", "comma-separated subset of networks to bake (default: the full corpus)")
	fs.Parse(args)
	if w.spanRisk {
		return fmt.Errorf("bake does not support -span-risk: snapshots persist PoP-level risk vectors")
	}

	var nets []*riskroute.Network
	if w.topoFile != "" {
		f, err := os.Open(w.topoFile)
		if err != nil {
			return err
		}
		parsed, err := riskroute.ParseTopology(f)
		f.Close()
		if err != nil {
			return err
		}
		nets = parsed
	} else {
		nets = riskroute.BuiltinNetworks()
	}
	if *networks != "" {
		byName := make(map[string]*riskroute.Network, len(nets))
		for _, n := range nets {
			byName[n.Name] = n
		}
		var picked []*riskroute.Network
		for _, name := range strings.Split(*networks, ",") {
			name = strings.TrimSpace(name)
			n := byName[name]
			if n == nil {
				return fmt.Errorf("unknown network %q (try 'riskroute networks')", name)
			}
			picked = append(picked, n)
		}
		nets = picked
	}

	// bake always collects, like stats: the world-bake span tree and fit
	// metrics land in the telemetry report and the run manifest.
	tel.ensure()
	world, err := riskroute.BakeServeWorld(riskroute.ServeConfig{
		Networks:   nets,
		Blocks:     w.blocks,
		EventScale: w.eventScale,
		Seed:       seedFlag,
		Workers:    workersFlag,
		Metrics:    tel.reg,
		Trace:      tel.trace,
		Health:     tel.health,
		Logger:     tel.logger,
	})
	if err != nil {
		return err
	}
	digest, err := riskroute.WriteWorldSnapshotFile(*out, world)
	if err != nil {
		return err
	}
	if tel.ledger != nil {
		tel.ledger.SetConfig("world-snapshot-digest", digest)
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("baked %s: %d catalogs, %d networks, %d census blocks, %.1f MiB\n",
		*out, len(world.Catalogs), len(world.Networks), len(world.Census),
		float64(info.Size())/(1<<20))
	fmt.Printf("  digest %s\n", digest)
	fmt.Printf("  boot it: riskrouted -world-snapshot %s -blocks %d -event-scale %g -seed %d\n",
		*out, w.blocks, w.eventScale, seedFlag)
	return nil
}
