// Command riskroute is the interactive front end to the RiskRoute
// framework: risk-aware routing, ratio evaluation, provisioning
// recommendations, peering suggestions, and hurricane replays over the
// embedded 23-network corpus (or a user-supplied topology file).
//
//	riskroute route -network Level3 -from Houston -to Boston -lambda-h 1e5
//	riskroute ratios -network Sprint
//	riskroute ratios -interdomain -network Digex
//	riskroute provision -network Tinet -links 5
//	riskroute peers -network Telepak
//	riskroute replay -storm Sandy -network Level3
//	riskroute scope -storm Irene
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"riskroute"
	"riskroute/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	tel.cmd = cmd
	var err error
	switch cmd {
	case "route":
		err = cmdRoute(args)
	case "explain":
		err = cmdExplain(args)
	case "ratios":
		err = cmdRatios(args)
	case "provision":
		err = cmdProvision(args)
	case "peers":
		err = cmdPeers(args)
	case "replay":
		err = cmdReplay(args)
	case "scope":
		err = cmdScope(args)
	case "outage":
		err = cmdOutage(args)
	case "backup":
		err = cmdBackup(args)
	case "fib":
		err = cmdFIB(args)
	case "kpaths":
		err = cmdKPaths(args)
	case "weights":
		err = cmdWeights(args)
	case "sharedrisk":
		err = cmdSharedRisk(args)
	case "ensemble":
		err = cmdEnsemble(args)
	case "season":
		err = cmdSeason(args)
	case "export":
		err = cmdExport(args)
	case "networks":
		err = cmdNetworks(args)
	case "check":
		err = cmdCheck(args)
	case "stats":
		err = cmdStats(args)
	case "bake":
		err = cmdBake(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "riskroute: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	telemetryFinish(err)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riskroute:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `riskroute <command> [flags]

Commands:
  route      minimum bit-risk-mile path between two PoPs vs shortest path
  explain    per-edge, per-layer attribution of a route (JSON or GeoJSON,
             byte-identical to the daemon's /v1/route?explain=1)
  ratios     risk-reduction / distance-increase ratios (intra- or interdomain)
  provision  best additional links for a network (Equation 4, greedy)
  peers      best new peering relationships for a regional network
  replay     per-advisory risk ratios during a hurricane
  scope      PoPs inside a hurricane's cumulative wind fields
  outage     simulate a storm knocking out exposed PoPs
  backup     fast-reroute protection plan for a PoP pair
  fib        forwarding table with loop-free alternates (RFC 5714)
  kpaths     diverse paths and SLA-constrained routing
  weights    composite OSPF link-weight export
  sharedrisk co-located disaster exposure between providers
  ensemble   Monte-Carlo scenario sweep: perturbed storm tracks, line cuts,
             disk outages, and correlated regional failures, reported as
             per-network outage-risk distributions (JSON)
  season     per-season risk and routing behaviour
  export     dump embedded topologies (native text or GraphML)
  networks   list the embedded networks
  check      diagnose inputs and report degraded-mode pipeline health
  stats      instrumented pipeline pass; emits the telemetry report (JSON)
  bake       fit the world once and persist it as a binary snapshot that
             riskrouted -world-snapshot boots in milliseconds

Every command also takes the scheduling and observability flags:
  -workers n                 max goroutines for parallel stages (0 = all
                             cores, 1 = sequential); results are identical
                             at any setting
  -seed n                    deterministic seed for the synthetic world and
                             scenario ensembles (fixed constant, never wall
                             clock); recorded in the run manifest
  -telemetry text|json|off   emit a metrics + trace report to stderr on exit
  -log text|json|off         structured log stream (slog) to stderr
  -trace-out file            write the run's trace as Chrome trace-event JSON
  -runs dir                  write a run manifest under dir/<runID>/
  -cpuprofile file           write a CPU profile of the run
  -memprofile file           write a heap profile at exit
  -debug-addr addr           serve expvar, net/http/pprof, and /telemetry

Run 'riskroute <command> -h' for command flags.
`)
}

// worldFlags carries the shared synthetic-world configuration.
type worldFlags struct {
	blocks     int
	eventScale float64
	topoFile   string
	spanRisk   bool
}

func addWorldFlags(fs *flag.FlagSet) *worldFlags {
	w := &worldFlags{}
	fs.IntVar(&w.blocks, "blocks", 20000, "synthetic census blocks")
	fs.Float64Var(&w.eventScale, "event-scale", 0.2, "disaster catalog scale (1.0 = paper size)")
	fs.StringVar(&w.topoFile, "topology", "", "optional topology file (native format) replacing the embedded corpus")
	fs.BoolVar(&w.spanRisk, "span-risk", false, "also charge risk sampled along fiber spans, not just at PoPs")
	addTelemetryFlags(fs)
	return w
}

func (w *worldFlags) build() (*riskroute.HazardModel, *riskroute.Census, error) {
	model, err := riskroute.FitHazard(riskroute.SyntheticHazardSources(w.eventScale, seedFlag),
		riskroute.HazardFitConfig{Workers: workersFlag, Metrics: tel.reg,
			Trace: tel.trace, Health: tel.health, Logger: tel.logger})
	if err != nil {
		return nil, nil, err
	}
	return model, riskroute.SyntheticCensus(w.blocks, seedFlag), nil
}

func (w *worldFlags) network(name string) (*riskroute.Network, error) {
	if w.topoFile != "" {
		f, err := os.Open(w.topoFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		nets, err := riskroute.ParseTopology(f)
		if err != nil {
			return nil, err
		}
		for _, n := range nets {
			if n.Name == name {
				return n, nil
			}
		}
		return nil, fmt.Errorf("network %q not in %s", name, w.topoFile)
	}
	n := riskroute.BuiltinNetwork(name)
	if n == nil {
		return nil, fmt.Errorf("unknown network %q (try 'riskroute networks')", name)
	}
	return n, nil
}

// engineFor wires a network into a routing engine, optionally with a storm
// advisory's forecast risk and fiber-span risk sampling.
func engineFor(w *worldFlags, name string, params riskroute.Params,
	advisory *riskroute.Advisory) (*riskroute.Engine, *riskroute.Network, error) {

	net, err := w.network(name)
	if err != nil {
		return nil, nil, err
	}
	model, census, err := w.build()
	if err != nil {
		return nil, nil, err
	}
	asg, err := riskroute.AssignPopulationWorkers(census, net, workersFlag)
	if err != nil {
		return nil, nil, err
	}
	var fc []float64
	if advisory != nil {
		rm := riskroute.DefaultForecastModel()
		fc = rm.PoPRisks(advisory, net)
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      model.PoPRisks(net),
		Forecast:  fc,
		Fractions: asg.Fractions,
		Params:    params,
	}
	if w.spanRisk {
		ctx.SetLinkHist(model.LinkRisks(net, 8))
	}
	e, err := riskroute.NewEngine(ctx, telOptions())
	if err != nil {
		return nil, nil, err
	}
	return e, net, nil
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network name")
	from := fs.String("from", "Houston", "source PoP name")
	to := fs.String("to", "Boston", "destination PoP name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	lambdaF := fs.Float64("lambda-f", 1e3, "forecast risk weight λ_f")
	storm := fs.String("storm", "", "active storm (Irene, Katrina, Sandy) for forecast risk")
	advisoryNum := fs.Int("advisory", 0, "advisory number within the storm (0 = peak advisory)")
	svgPath := fs.String("svg", "", "write the comparison as an SVG map")
	fs.Parse(args)

	adv, err := pickAdvisory(*storm, *advisoryNum)
	if err != nil {
		return err
	}
	e, net, err := engineFor(w, *network, riskroute.Params{LambdaH: *lambdaH, LambdaF: *lambdaF}, adv)
	if err != nil {
		return err
	}
	src := net.PoPIndex(*from)
	dst := net.PoPIndex(*to)
	if src == -1 || dst == -1 {
		return fmt.Errorf("PoP not found (%q=%d, %q=%d)", *from, src, *to, dst)
	}
	rr := e.RiskRoutePair(src, dst)
	sp := e.ShortestPair(src, dst)
	fmt.Printf("network %s, %s -> %s (λ_h=%.0e λ_f=%.0e", net.Name, *from, *to, *lambdaH, *lambdaF)
	if adv != nil {
		fmt.Printf(", %s advisory %d", *storm, adv.Number)
	}
	fmt.Println(")")
	fmt.Printf("  shortest : %8.0f mi  %10.0f bit-risk mi  %s\n",
		sp.Miles, sp.BitRiskMiles, pathString(net, sp.Path))
	fmt.Printf("  riskroute: %8.0f mi  %10.0f bit-risk mi  %s\n",
		rr.Miles, rr.BitRiskMiles, pathString(net, rr.Path))
	if sp.BitRiskMiles > 0 {
		fmt.Printf("  risk reduction: %.1f%%  distance increase: %.1f%%\n",
			100*(1-rr.BitRiskMiles/sp.BitRiskMiles), 100*(rr.Miles/sp.Miles-1))
	}
	if *svgPath != "" {
		if err := writeRouteSVG(*svgPath, net, sp.Path, rr.Path, adv); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", *svgPath)
	}
	return nil
}

// writeRouteSVG renders the network with the shortest path (blue) and the
// RiskRoute path (orange), plus the active advisory's wind fields if any.
func writeRouteSVG(path string, net *riskroute.Network, shortest, riskPath []int, adv *riskroute.Advisory) error {
	m := report.NewSVGMap(900)
	if adv != nil {
		m.AddGeoCircle(adv.Center, adv.TropicalRadiusMi, "#3498db", 0.15)
		if adv.HurricaneRadiusMi > 0 {
			m.AddGeoCircle(adv.Center, adv.HurricaneRadiusMi, "#c0392b", 0.25)
		}
	}
	m.AddLinks(net, "#bbbbbb", 0.5)
	m.AddPoPs(net.Locations(), 1.8, "#7f8c8d")
	m.AddRoute(net, shortest, "#2980b9", 2.2)
	m.AddRoute(net, riskPath, "#e67e22", 2.2)
	m.AddLabel(net.PoPs[shortest[0]].Location, net.PoPs[shortest[0]].Name, "#000000", 11)
	m.AddLabel(net.PoPs[shortest[len(shortest)-1]].Location, net.PoPs[shortest[len(shortest)-1]].Name, "#000000", 11)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Render(f)
}

func pathString(n *riskroute.Network, path []int) string {
	names := make([]string, len(path))
	for i, v := range path {
		names[i] = n.PoPs[v].Name
	}
	return strings.Join(names, " -> ")
}

// pickAdvisory loads a storm replay and selects an advisory: by number, or
// the maximum-wind advisory when num is 0.
func pickAdvisory(storm string, num int) (*riskroute.Advisory, error) {
	if storm == "" {
		return nil, nil
	}
	track := riskroute.HurricaneByName(storm)
	if track == nil {
		return nil, fmt.Errorf("unknown storm %q", storm)
	}
	replay, err := riskroute.LoadHurricaneReplay(track)
	if err != nil {
		return nil, err
	}
	if num > 0 {
		for _, a := range replay.Advisories {
			if a.Number == num {
				return a, nil
			}
		}
		return nil, fmt.Errorf("storm %s has no advisory %d", storm, num)
	}
	best := replay.Advisories[0]
	for _, a := range replay.Advisories {
		if a.MaxWindMPH > best.MaxWindMPH {
			best = a
		}
	}
	return best, nil
}

func cmdRatios(args []string) error {
	fs := flag.NewFlagSet("ratios", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Sprint", "network name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	inter := fs.Bool("interdomain", false, "interdomain evaluation across the peering mesh")
	fs.Parse(args)

	params := riskroute.Params{LambdaH: *lambdaH}
	if !*inter {
		e, net, err := engineFor(w, *network, params, nil)
		if err != nil {
			return err
		}
		r := e.Evaluate()
		fmt.Printf("%s intradomain (λ_h=%.0e, %d pairs): risk reduction %.3f, distance increase %.3f\n",
			net.Name, *lambdaH, r.Pairs, r.RiskReduction, r.DistanceIncrease)
		return nil
	}

	model, census, err := w.build()
	if err != nil {
		return err
	}
	nets := riskroute.BuiltinNetworks()
	comp, err := riskroute.BuildComposite(nets, riskroute.BuiltinPeered)
	if err != nil {
		return err
	}
	an, err := riskroute.NewInterdomainAnalysis(comp, model, census, nil, params, telOptions())
	if err != nil {
		return err
	}
	var regionals []string
	for _, n := range riskroute.BuiltinRegional() {
		regionals = append(regionals, n.Name)
	}
	r, err := an.RegionalRatios(*network, regionals)
	if err != nil {
		return err
	}
	fmt.Printf("%s interdomain (λ_h=%.0e, %d pairs): risk reduction %.3f, distance increase %.3f\n",
		*network, *lambdaH, r.Pairs, r.RiskReduction, r.DistanceIncrease)
	return nil
}

func cmdProvision(args []string) error {
	fs := flag.NewFlagSet("provision", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Tinet", "network name")
	links := fs.Int("links", 5, "number of links to add greedily")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	fs.Parse(args)

	e, net, err := engineFor(w, *network, riskroute.Params{LambdaH: *lambdaH}, nil)
	if err != nil {
		return err
	}
	adds, err := e.GreedyAdditionalLinks(*links)
	if err != nil {
		return err
	}
	fmt.Printf("best additional links for %s (Equation 4, greedy):\n", net.Name)
	for i, a := range adds {
		fmt.Printf("  %2d. %-20s -- %-20s  bit-risk fraction %.4f\n",
			i+1, net.PoPs[a.Link.A].Name, net.PoPs[a.Link.B].Name, a.Fraction)
	}
	return nil
}

func cmdPeers(args []string) error {
	fs := flag.NewFlagSet("peers", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Telepak", "regional network name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	fs.Parse(args)

	model, census, err := w.build()
	if err != nil {
		return err
	}
	nets := riskroute.BuiltinNetworks()
	var regionals []string
	for _, n := range riskroute.BuiltinRegional() {
		regionals = append(regionals, n.Name)
	}
	choices, err := riskroute.BestNewPeering(nets, riskroute.BuiltinPeered, *network,
		regionals, model, census, riskroute.Params{LambdaH: *lambdaH}, telOptions())
	if err != nil {
		return err
	}
	fmt.Printf("candidate peerings for %s (current peers: %s):\n",
		*network, strings.Join(riskroute.BuiltinPeers(*network), ", "))
	for i, c := range choices {
		fmt.Printf("  %2d. %-14s bit-risk fraction %.4f (%d shared cities)\n",
			i+1, c.Peer, c.Fraction, c.SharedCities)
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network name")
	storm := fs.String("storm", "Sandy", "storm name (Irene, Katrina, Sandy)")
	stride := fs.Int("stride", 5, "evaluate every k-th advisory")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	lambdaF := fs.Float64("lambda-f", 1e3, "forecast risk weight λ_f")
	fs.Parse(args)

	track := riskroute.HurricaneByName(*storm)
	if track == nil {
		return fmt.Errorf("unknown storm %q", *storm)
	}
	replay, err := riskroute.LoadHurricaneReplay(track)
	if err != nil {
		return err
	}
	net, err := w.network(*network)
	if err != nil {
		return err
	}
	model, census, err := w.build()
	if err != nil {
		return err
	}
	asg, err := riskroute.AssignPopulationWorkers(census, net, workersFlag)
	if err != nil {
		return err
	}
	hist := model.PoPRisks(net)
	rm := riskroute.DefaultForecastModel()

	fmt.Printf("%s during %s (λ_h=%.0e λ_f=%.0e):\n", net.Name, *storm, *lambdaH, *lambdaF)
	for i := 0; i < len(replay.Advisories); i += *stride {
		a := replay.Advisories[i]
		ctx := &riskroute.Context{
			Net:       net,
			Hist:      hist,
			Forecast:  rm.PoPRisks(a, net),
			Fractions: asg.Fractions,
			Params:    riskroute.Params{LambdaH: *lambdaH, LambdaF: *lambdaF},
		}
		e, err := riskroute.NewEngine(ctx, telOptions())
		if err != nil {
			return err
		}
		r := e.Evaluate()
		fmt.Printf("  advisory %2d  %s  center %s  risk reduction %.3f\n",
			a.Number, a.Time.UTC().Format("Jan 2 15:04Z"), a.Center, r.RiskReduction)
	}
	return nil
}

func cmdScope(args []string) error {
	fs := flag.NewFlagSet("scope", flag.ExitOnError)
	addTelemetryFlags(fs)
	storm := fs.String("storm", "Sandy", "storm name (Irene, Katrina, Sandy)")
	fs.Parse(args)

	track := riskroute.HurricaneByName(*storm)
	if track == nil {
		return fmt.Errorf("unknown storm %q", *storm)
	}
	replay, err := riskroute.LoadHurricaneReplay(track)
	if err != nil {
		return err
	}
	scope := riskroute.ScopeOf(replay)
	fmt.Printf("%s cumulative wind-field scope (%d advisories):\n", *storm, len(replay.Advisories))
	type row struct {
		name       string
		h, t, pops int
	}
	var rows []row
	for _, n := range riskroute.BuiltinNetworks() {
		h, t := scope.PoPsInScope(n)
		rows = append(rows, row{n.Name, h, t, len(n.PoPs)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].h > rows[j].h })
	for _, r := range rows {
		if r.t == 0 {
			continue
		}
		fmt.Printf("  %-14s %3d/%3d PoPs hurricane-force, %3d tropical+\n",
			r.name, r.h, r.pops, r.t)
	}
	return nil
}

func cmdNetworks(args []string) error {
	fs := flag.NewFlagSet("networks", flag.ExitOnError)
	addTelemetryFlags(fs)
	fs.Parse(args)
	fmt.Println("embedded networks (7 Tier-1, 16 regional):")
	for _, n := range riskroute.BuiltinNetworks() {
		fmt.Printf("  %-14s %-8s %3d PoPs  %3d links  peers: %s\n",
			n.Name, n.Tier, len(n.PoPs), len(n.Links),
			strings.Join(riskroute.BuiltinPeers(n.Name), ", "))
	}
	return nil
}
