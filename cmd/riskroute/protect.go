package main

import (
	"flag"
	"fmt"
	"math"
	"strings"

	"riskroute"
)

// Subcommands for the paper's Section 3 integrations (fast reroute, OSPF
// weight export, diverse paths), the Section 6.4 SLA variant, and the
// future-work extensions (shared risk, seasonal routing).

func cmdBackup(args []string) error {
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network name")
	from := fs.String("from", "Houston", "source PoP name")
	to := fs.String("to", "Boston", "destination PoP name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	fs.Parse(args)

	e, net, err := engineFor(w, *network, riskroute.Params{LambdaH: *lambdaH}, nil)
	if err != nil {
		return err
	}
	src, dst := net.PoPIndex(*from), net.PoPIndex(*to)
	if src == -1 || dst == -1 {
		return fmt.Errorf("PoP not found")
	}
	primary, backups, err := e.FastReroutePlan(src, dst)
	if err != nil {
		return err
	}
	fmt.Printf("fast-reroute plan, %s: %s -> %s\n", net.Name, *from, *to)
	fmt.Printf("primary (%6.0f mi, %9.0f bit-risk mi): %s\n",
		primary.Miles, primary.BitRiskMiles, pathString(net, primary.Path))
	for _, b := range backups {
		label := fmt.Sprintf("%s--%s", net.PoPs[b.FailedLink.A].Name, net.PoPs[b.FailedLink.B].Name)
		if b.Path == nil {
			fmt.Printf("  if %-36s fails: pair DISCONNECTED\n", label)
			continue
		}
		fmt.Printf("  if %-36s fails: %6.0f mi, %9.0f bit-risk mi, %d hops\n",
			label, b.Miles, b.BitRiskMiles, len(b.Path)-1)
	}
	return nil
}

func cmdKPaths(args []string) error {
	fs := flag.NewFlagSet("kpaths", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network name")
	from := fs.String("from", "Houston", "source PoP name")
	to := fs.String("to", "Boston", "destination PoP name")
	k := fs.Int("k", 4, "number of diverse paths")
	stretch := fs.Float64("sla-stretch", -1, "if >= 0, also solve the SLA-constrained variant with this stretch budget")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	fs.Parse(args)

	e, net, err := engineFor(w, *network, riskroute.Params{LambdaH: *lambdaH}, nil)
	if err != nil {
		return err
	}
	src, dst := net.PoPIndex(*from), net.PoPIndex(*to)
	if src == -1 || dst == -1 {
		return fmt.Errorf("PoP not found")
	}
	fmt.Printf("%d most risk-diverse paths, %s: %s -> %s\n", *k, net.Name, *from, *to)
	for i, p := range e.DiversePaths(src, dst, *k) {
		fmt.Printf("  %d. %6.0f mi  %9.0f bit-risk mi  %s\n",
			i+1, p.Miles, p.BitRiskMiles, pathString(net, p.Path))
	}
	if *stretch >= 0 {
		r, err := e.SLAConstrainedPair(src, dst, *stretch, 32)
		if err != nil {
			return err
		}
		fmt.Printf("SLA-constrained (stretch ≤ %.0f%%): %6.0f mi  %9.0f bit-risk mi  %s\n",
			*stretch*100, r.Miles, r.BitRiskMiles, pathString(net, r.Path))
	}
	return nil
}

func cmdWeights(args []string) error {
	fs := flag.NewFlagSet("weights", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Sprint", "network name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	verify := fs.Bool("verify", true, "verify OSPF routing against exact risk routing")
	fs.Parse(args)

	e, net, err := engineFor(w, *network, riskroute.Params{LambdaH: *lambdaH}, nil)
	if err != nil {
		return err
	}
	export, err := e.ExportOSPFWeights()
	if err != nil {
		return err
	}
	fmt.Printf("composite OSPF link weights for %s (α̅ = %.4f, metric 1 = %.2f bit-risk mi):\n",
		net.Name, export.Alpha, export.MilesPerUnit)
	for _, lw := range export.Weights {
		riskShare := 0.0
		if lw.Miles+lw.Risk > 0 {
			riskShare = lw.Risk / (lw.Miles + lw.Risk)
		}
		fmt.Printf("  %-18s -- %-18s metric %5d  (%5.0f mi + risk %.0f, %2.0f%% risk)\n",
			net.PoPs[lw.Link.A].Name, net.PoPs[lw.Link.B].Name,
			lw.Weight, lw.Miles, lw.Risk, 100*riskShare)
	}
	if *verify {
		frac, err := e.VerifyOSPFExport(export, 0.01, 0)
		if err != nil {
			return err
		}
		fmt.Printf("verification: %.2f%% of pairs diverge >1%% from exact α̅ routing\n", 100*frac)
	}
	return nil
}

func cmdSharedRisk(args []string) error {
	fs := flag.NewFlagSet("sharedrisk", flag.ExitOnError)
	w := addWorldFlags(fs)
	radius := fs.Float64("radius", 50, "co-location radius in miles")
	top := fs.Int("top", 15, "show the top-N overlapping pairs")
	fs.Parse(args)

	model, _, err := w.build()
	if err != nil {
		return err
	}
	matrix, err := riskroute.SharedRiskMatrix(riskroute.BuiltinNetworks(), model, *radius)
	if err != nil {
		return err
	}
	fmt.Printf("shared disaster exposure between providers (radius %.0f mi):\n", *radius)
	for i, r := range matrix {
		if i >= *top {
			break
		}
		fmt.Printf("  %-14s ~ %-14s overlap %.3f  (%d co-located PoP pairs)\n",
			r.A, r.B, r.Normalized, r.ColocatedPairs)
	}
	return nil
}

func cmdSeason(args []string) error {
	fs := flag.NewFlagSet("season", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Sprint", "network name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	fs.Parse(args)

	seasonal, err := riskroute.FitSeasonalHazard(
		riskroute.SyntheticSeasonalSources(w.eventScale, seedFlag),
		riskroute.HazardFitConfig{Metrics: tel.reg, Trace: tel.trace})
	if err != nil {
		return err
	}
	net, err := w.network(*network)
	if err != nil {
		return err
	}
	census := riskroute.SyntheticCensus(w.blocks, seedFlag)
	asg, err := riskroute.AssignPopulationWorkers(census, net, workersFlag)
	if err != nil {
		return err
	}
	fmt.Printf("seasonal risk-averse routing for %s (λ_h=%.0e):\n", net.Name, *lambdaH)
	for si, name := range seasonal.Names {
		ctx := &riskroute.Context{
			Net:       net,
			Hist:      seasonal.PoPRisks(net, si),
			Fractions: asg.Fractions,
			Params:    riskroute.Params{LambdaH: *lambdaH},
		}
		e, err := riskroute.NewEngine(ctx, telOptions())
		if err != nil {
			return err
		}
		r := e.Evaluate()
		mean := 0.0
		for _, v := range ctx.Hist {
			mean += v
		}
		mean /= float64(len(ctx.Hist))
		bar := strings.Repeat("#", int(math.Min(r.RiskReduction*300, 60)))
		fmt.Printf("  %-6s  mean PoP risk %.3f  risk reduction %.3f %s\n", name, mean, r.RiskReduction, bar)
	}
	return nil
}

// cmdFIB prints a source PoP's destination-based forwarding table: primary
// risk-aware next hops plus RFC 5714 loop-free alternates.
func cmdFIB(args []string) error {
	fs := flag.NewFlagSet("fib", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Sprint", "network name")
	from := fs.String("from", "Kansas City", "source PoP name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	fs.Parse(args)

	e, net, err := engineFor(w, *network, riskroute.Params{LambdaH: *lambdaH}, nil)
	if err != nil {
		return err
	}
	src := net.PoPIndex(*from)
	if src == -1 {
		return fmt.Errorf("PoP %q not found", *from)
	}
	table, err := e.ForwardingTable(src)
	if err != nil {
		return err
	}
	fmt.Printf("forwarding table at %s/%s (risk-aware next hops + loop-free alternates):\n",
		net.Name, *from)
	protected := 0
	for _, entry := range table {
		backup := "-"
		if entry.Backup != -1 {
			backup = net.PoPs[entry.Backup].Name
			protected++
		}
		fmt.Printf("  %-18s via %-18s lfa %s\n",
			net.PoPs[entry.Dest].Name, net.PoPs[entry.NextHop].Name, backup)
	}
	fmt.Printf("%d/%d destinations protected by an LFA\n", protected, len(table))
	return nil
}
