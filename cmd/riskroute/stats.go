package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"riskroute"
)

// cmdStats runs an instrumented end-to-end pipeline pass — topology parse,
// hazard fit, engine build, all-pairs sweep — and emits the telemetry report
// (trace tree + metrics snapshot + runtime stats) to stdout, JSON by default:
//
//	riskroute stats
//	riskroute stats -network Sprint -format text
//	riskroute stats -topology nets.txt
//
// The report is machine-readable: the trace carries the parse / fit /
// engine-build / sweep stage spans with durations in nanoseconds, and the
// metrics snapshot carries every counter, gauge, and histogram the pipeline
// recorded. This is the command for answering "where does a run spend its
// time" without attaching a profiler.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network to route over")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	format := fs.String("format", "json", "report format: json or text")
	worldSnap := fs.String("world-snapshot", "", "boot from a baked world snapshot instead of fitting (see 'riskroute bake')")
	fs.Parse(args)
	if *format != "json" && *format != "text" {
		return fmt.Errorf("unknown format %q (want json or text)", *format)
	}
	if *worldSnap != "" && w.topoFile != "" {
		return fmt.Errorf("-world-snapshot verifies against the embedded corpus; it cannot be combined with -topology")
	}

	// stats always collects, with or without -telemetry. The health funnel
	// is the shared one, so degraded events flow into metrics, logs, and the
	// run manifest through a single path.
	tel.ensure()
	reg, trace, health := tel.reg, tel.trace, tel.health

	var net *riskroute.Network
	var model *riskroute.HazardModel
	var hist, fractions []float64
	if *worldSnap != "" {
		// Snapshot path: no parse, no fit — load, verify, restore. The CLI
		// fails hard on any mismatch; fallback-to-fit is the daemon's job.
		world, lstats, err := riskroute.LoadWorldSnapshot(*worldSnap, riskroute.WorldSnapshotLoadOptions{
			Workers: workersFlag, Metrics: reg, Trace: trace,
			Logger: tel.logger, Health: health,
		})
		if err != nil {
			return err
		}
		if err := world.VerifyConfig(w.blocks, w.eventScale, seedFlag); err != nil {
			return err
		}
		for _, n := range riskroute.BuiltinNetworks() {
			if n.Name == *network {
				net = n
			}
		}
		if net == nil {
			return fmt.Errorf("network %q not found (try 'riskroute networks')", *network)
		}
		ns, err := world.VerifyNetwork(net)
		if err != nil {
			return err
		}
		if model, err = riskroute.RestoreHazardModel(world); err != nil {
			return err
		}
		hist, fractions = ns.Hist, ns.Fractions
		trace.SetAttr("boot_path", "snapshot")
		trace.SetAttr("snapshot_digest", lstats.Digest)
		trace.SetAttr("snapshot_load_ms", float64(lstats.Duration.Microseconds())/1e3)
	} else {
		// Parse stage: the user's topology file, or the embedded corpus
		// round-tripped through the native text format so the parser is
		// measured on a realistic full-corpus input.
		parse := trace.Child("parse")
		var nets []*riskroute.Network
		var err error
		if w.topoFile != "" {
			f, oerr := os.Open(w.topoFile)
			if oerr != nil {
				return oerr
			}
			nets, err = riskroute.ParseTopologyLenient(f, nil, health)
			f.Close()
		} else {
			var buf bytes.Buffer
			if err := riskroute.WriteTopology(&buf, riskroute.BuiltinNetworks()); err != nil {
				return err
			}
			nets, err = riskroute.ParseTopologyLenient(&buf, nil, health)
		}
		if err != nil {
			return err
		}
		parse.SetAttr("networks", len(nets))
		parse.End()
		for _, n := range nets {
			if n.Name == *network {
				net = n
			}
		}
		if net == nil {
			return fmt.Errorf("network %q not found (try 'riskroute networks')", *network)
		}

		model, err = riskroute.FitHazard(riskroute.SyntheticHazardSources(w.eventScale, seedFlag),
			riskroute.HazardFitConfig{Metrics: reg, Trace: trace, Health: health,
				Logger: tel.logger})
		if err != nil {
			return err
		}
		census := riskroute.SyntheticCensus(w.blocks, seedFlag)
		asg, err := riskroute.AssignPopulationWorkers(census, net, workersFlag)
		if err != nil {
			return err
		}
		hist, fractions = model.PoPRisks(net), asg.Fractions
		trace.SetAttr("boot_path", "fit")
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      hist,
		Fractions: fractions,
		Params:    riskroute.Params{LambdaH: *lambdaH},
	}
	if w.spanRisk {
		ctx.SetLinkHist(model.LinkRisks(net, 8))
	}
	e, err := riskroute.NewEngine(ctx, telOptions())
	if err != nil {
		return err
	}
	r := e.Evaluate()
	trace.SetAttr("network", net.Name)
	trace.SetAttr("pairs", r.Pairs)
	trace.SetAttr("risk_reduction", r.RiskReduction)
	trace.End()

	// Same report-building path as the -telemetry exit report.
	return writeTelemetryReport(os.Stdout, *format)
}
