package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"riskroute"
)

// cmdStats runs an instrumented end-to-end pipeline pass — topology parse,
// hazard fit, engine build, all-pairs sweep — and emits the telemetry report
// (trace tree + metrics snapshot + runtime stats) to stdout, JSON by default:
//
//	riskroute stats
//	riskroute stats -network Sprint -format text
//	riskroute stats -topology nets.txt
//
// The report is machine-readable: the trace carries the parse / fit /
// engine-build / sweep stage spans with durations in nanoseconds, and the
// metrics snapshot carries every counter, gauge, and histogram the pipeline
// recorded. This is the command for answering "where does a run spend its
// time" without attaching a profiler.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network to route over")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	format := fs.String("format", "json", "report format: json or text")
	fs.Parse(args)
	if *format != "json" && *format != "text" {
		return fmt.Errorf("unknown format %q (want json or text)", *format)
	}

	// stats always collects, with or without -telemetry. The health funnel
	// is the shared one, so degraded events flow into metrics, logs, and the
	// run manifest through a single path.
	tel.ensure()
	reg, trace, health := tel.reg, tel.trace, tel.health

	// Parse stage: the user's topology file, or the embedded corpus
	// round-tripped through the native text format so the parser is measured
	// on a realistic full-corpus input.
	parse := trace.Child("parse")
	var nets []*riskroute.Network
	var err error
	if w.topoFile != "" {
		f, oerr := os.Open(w.topoFile)
		if oerr != nil {
			return oerr
		}
		nets, err = riskroute.ParseTopologyLenient(f, nil, health)
		f.Close()
	} else {
		var buf bytes.Buffer
		if err := riskroute.WriteTopology(&buf, riskroute.BuiltinNetworks()); err != nil {
			return err
		}
		nets, err = riskroute.ParseTopologyLenient(&buf, nil, health)
	}
	if err != nil {
		return err
	}
	parse.SetAttr("networks", len(nets))
	parse.End()
	var net *riskroute.Network
	for _, n := range nets {
		if n.Name == *network {
			net = n
		}
	}
	if net == nil {
		return fmt.Errorf("network %q not found (try 'riskroute networks')", *network)
	}

	model, err := riskroute.FitHazard(riskroute.SyntheticHazardSources(w.eventScale, w.seed),
		riskroute.HazardFitConfig{Metrics: reg, Trace: trace, Health: health,
			Logger: tel.logger})
	if err != nil {
		return err
	}
	census := riskroute.SyntheticCensus(w.blocks, w.seed)
	asg, err := riskroute.AssignPopulationWorkers(census, net, workersFlag)
	if err != nil {
		return err
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.Params{LambdaH: *lambdaH},
	}
	if w.spanRisk {
		ctx.SetLinkHist(model.LinkRisks(net, 8))
	}
	e, err := riskroute.NewEngine(ctx, telOptions())
	if err != nil {
		return err
	}
	r := e.Evaluate()
	trace.SetAttr("network", net.Name)
	trace.SetAttr("pairs", r.Pairs)
	trace.SetAttr("risk_reduction", r.RiskReduction)
	trace.End()

	// Same report-building path as the -telemetry exit report.
	return writeTelemetryReport(os.Stdout, *format)
}
