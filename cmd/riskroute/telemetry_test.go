package main

// Telemetry-facing CLI tests: the stats subcommand's machine-readable
// report, the -telemetry exit report on ordinary subcommands, and
// deterministic output checks for the outage and backup commands.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// report mirrors the JSON emitted by `riskroute stats` and `-telemetry json`.
type telReport struct {
	Trace   *spanNode `json:"trace"`
	Metrics struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	} `json:"metrics"`
}

type spanNode struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs"`
	Children   []*spanNode    `json:"children"`
}

func (s *spanNode) find(name string) *spanNode {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if got := c.find(name); got != nil {
			return got
		}
	}
	return nil
}

// runSplit runs the CLI capturing stdout and stderr separately — the
// telemetry report goes to stderr and must not pollute command output.
func runSplit(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(binPath, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("riskroute %s: %v\nstdout:\n%s\nstderr:\n%s",
			strings.Join(args, " "), err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestCLIStats(t *testing.T) {
	stdout, _ := runSplit(t, append([]string{"stats"}, tiny...)...)
	var rep telReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stats output is not JSON: %v\n%s", err, stdout)
	}
	if rep.Trace == nil {
		t.Fatal("stats report has no trace")
	}
	for _, stage := range []string{"parse", "fit", "engine-build", "sweep"} {
		span := rep.Trace.find(stage)
		if span == nil {
			t.Errorf("stats trace missing %q span", stage)
			continue
		}
		if span.DurationNS <= 0 {
			t.Errorf("%s span has non-positive duration %d ns", stage, span.DurationNS)
		}
	}
	if pairs := rep.Metrics.Counters["core.sweep.pairs_total"]; pairs <= 0 {
		t.Errorf("core.sweep.pairs_total = %d, want > 0", pairs)
	}
	if lines := rep.Metrics.Counters["topology.parse.lines_total"]; lines <= 0 {
		t.Errorf("topology.parse.lines_total = %d, want > 0", lines)
	}
	if h, ok := rep.Metrics.Histograms["core.engine.build_seconds"]; !ok || h.Count == 0 {
		t.Errorf("core.engine.build_seconds histogram missing or empty: %+v", h)
	}
	if _, ok := rep.Metrics.Gauges["runtime.goroutines"]; !ok {
		t.Error("report missing runtime.goroutines gauge")
	}
}

func TestCLIStatsText(t *testing.T) {
	stdout, _ := runSplit(t, append([]string{"stats", "-format", "text", "-network", "Abilene"}, tiny...)...)
	for _, want := range []string{"span", "sweep", "core.sweep.pairs_total", "hazard.fit.sources_total"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stats text report missing %q:\n%.400s", want, stdout)
		}
	}
	runExpectError(t, "stats", "-format", "yaml")
}

func TestCLITelemetryFlag(t *testing.T) {
	args := append([]string{"outage", "-storm", "Sandy", "-network", "Abilene", "-telemetry", "json"}, tiny...)
	stdout, stderr := runSplit(t, args...)
	// Command output stays on stdout, untouched by the report.
	if !strings.Contains(stdout, "failed PoPs") {
		t.Errorf("outage stdout missing command output:\n%s", stdout)
	}
	if strings.Contains(stdout, `"metrics"`) {
		t.Error("telemetry report leaked onto stdout")
	}
	var rep telReport
	if err := json.Unmarshal([]byte(stderr), &rep); err != nil {
		t.Fatalf("-telemetry json stderr is not JSON: %v\n%s", err, stderr)
	}
	if rep.Trace == nil || rep.Trace.Name != "outage" {
		t.Fatalf("root span = %+v, want name \"outage\"", rep.Trace)
	}
	// outage builds an engine but never runs the all-pairs sweep, so only
	// the fit and build stages appear.
	for _, stage := range []string{"fit", "engine-build"} {
		if span := rep.Trace.find(stage); span == nil || span.DurationNS <= 0 {
			t.Errorf("-telemetry trace missing live %q span: %+v", stage, span)
		}
	}
}

func TestCLITelemetryHealthBridge(t *testing.T) {
	// check attaches a PipelineHealth and runs a full Evaluate, so the
	// report carries the sweep span plus the bridged pipeline.* counters.
	args := append([]string{"check", "-network", "Abilene", "-telemetry", "json"}, tiny...)
	stdout, stderr := runSplit(t, args...)
	if !strings.Contains(stdout, "risk reduction") {
		t.Errorf("check stdout missing command output:\n%s", stdout)
	}
	var rep telReport
	if err := json.Unmarshal([]byte(stderr), &rep); err != nil {
		t.Fatalf("-telemetry json stderr is not JSON: %v\n%s", err, stderr)
	}
	for _, stage := range []string{"fit", "engine-build", "sweep"} {
		if span := rep.Trace.find(stage); span == nil || span.DurationNS <= 0 {
			t.Errorf("-telemetry trace missing live %q span: %+v", stage, span)
		}
	}
	if rep.Metrics.Counters["pipeline.hazard.ok_total"] <= 0 {
		t.Error("health bridge counter pipeline.hazard.ok_total not recorded")
	}
}

func TestCLITelemetryOffIsSilent(t *testing.T) {
	args := append([]string{"route", "-network", "Abilene", "-from", "Seattle", "-to", "Atlanta", "-telemetry", "off"}, tiny...)
	_, stderr := runSplit(t, args...)
	if stderr != "" {
		t.Errorf("-telemetry off still wrote to stderr:\n%s", stderr)
	}
}

// miniTopo is a three-city Gulf line with a redundant long-haul edge, small
// enough that outage and backup outputs are fully predictable.
const miniTopo = `network|MiniNet|tier1
pop|A|29.95|-90.07|LA
pop|B|32.30|-90.18|MS
pop|C|35.15|-90.05|TN
link|A|B
link|B|C
link|A|C
`

func writeMiniTopo(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mini.topo")
	if err := os.WriteFile(path, []byte(miniTopo), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIOutageDeterministic(t *testing.T) {
	path := writeMiniTopo(t)
	args := append([]string{"outage", "-topology", path, "-network", "MiniNet", "-storm", "Katrina"}, tiny...)
	out := run(t, args...)
	// Katrina's hurricane-force field covers New Orleans: PoP A fails,
	// B and C survive and stay connected over the B--C link.
	for _, want := range []string{
		"MiniNet under Katrina",
		"failed PoPs:        1 of 3",
		"- A",
		"disconnected pairs: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("outage output missing %q:\n%s", want, out)
		}
	}
	if again := run(t, args...); again != out {
		t.Error("outage output not deterministic for a fixed world seed")
	}
}

func TestCLIBackupDeterministic(t *testing.T) {
	path := writeMiniTopo(t)
	args := append([]string{"backup", "-topology", path, "-network", "MiniNet", "-from", "A", "-to", "C"}, tiny...)
	out := run(t, args...)
	if !strings.Contains(out, "fast-reroute plan, MiniNet: A -> C") {
		t.Errorf("backup header:\n%s", out)
	}
	// The triangle always leaves a detour: no single link failure may
	// disconnect the pair.
	if strings.Contains(out, "DISCONNECTED") {
		t.Errorf("triangle topology reported a disconnection:\n%s", out)
	}
	if strings.Count(out, "if ") < 1 {
		t.Errorf("backup lists no failure cases:\n%s", out)
	}
	if again := run(t, args...); again != out {
		t.Error("backup output not deterministic for a fixed world seed")
	}
}

func TestCLIStructuredLogJSON(t *testing.T) {
	path := writeMiniTopo(t)
	args := append([]string{"outage", "-topology", path, "-network", "MiniNet", "-storm", "Katrina", "-log", "json"}, tiny...)
	stdout, stderr := runSplit(t, args...)
	if !strings.Contains(stdout, "failed PoPs") {
		t.Errorf("command output disturbed by -log:\n%s", stdout)
	}
	// Every stderr line is one slog JSON record.
	sawBuild := false
	for _, line := range strings.Split(strings.TrimSpace(stderr), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v: %q", err, line)
		}
		if rec["level"] == nil || rec["msg"] == nil || rec["time"] == nil {
			t.Fatalf("log record missing slog keys: %v", rec)
		}
		if rec["msg"] == "engine built" {
			sawBuild = true
			if rec["network"] != "MiniNet" {
				t.Errorf("engine built record = %v", rec)
			}
		}
	}
	if !sawBuild {
		t.Errorf("no \"engine built\" record in log stream:\n%s", stderr)
	}
}

func TestCLIStructuredLogText(t *testing.T) {
	path := writeMiniTopo(t)
	args := append([]string{"outage", "-topology", path, "-network", "MiniNet", "-storm", "Katrina", "-log", "text"}, tiny...)
	_, stderr := runSplit(t, args...)
	for _, want := range []string{"level=INFO", "msg=", "engine built"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-log text stderr missing %q:\n%s", want, stderr)
		}
	}
	runExpectError(t, "networks", "-log", "yaml")
}

func TestCLITraceOut(t *testing.T) {
	topo := writeMiniTopo(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	args := append([]string{"outage", "-topology", topo, "-network", "MiniNet", "-storm", "Katrina", "-trace-out", out}, tiny...)
	_, stderr := runSplit(t, args...)
	if !strings.Contains(stderr, "wrote trace to "+out) {
		t.Errorf("missing trace confirmation on stderr:\n%s", stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("-trace-out file is not Chrome trace JSON: %v", err)
	}
	if len(tr.TraceEvents) < 3 {
		t.Fatalf("trace has %d events, want metadata + spans", len(tr.TraceEvents))
	}
	if tr.TraceEvents[0].Phase != "M" {
		t.Errorf("first event phase = %q, want metadata", tr.TraceEvents[0].Phase)
	}
	names := map[string]bool{}
	for _, e := range tr.TraceEvents[1:] {
		if e.Phase != "X" {
			t.Errorf("span phase = %q, want X", e.Phase)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"outage", "fit", "engine-build"} {
		if !names[want] {
			t.Errorf("trace missing %q span; have %v", want, names)
		}
	}
}

// readOnlyManifest finds the single run directory under root and returns the
// raw manifest bytes.
func readOnlyManifest(t *testing.T, root string) []byte {
	t.Helper()
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("runs dir has %d entries, want 1", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(root, entries[0].Name(), "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCLIRunManifestDeterministic(t *testing.T) {
	topo := writeMiniTopo(t)
	runOnce := func() (string, []byte) {
		root := t.TempDir()
		args := append([]string{"outage", "-topology", topo, "-network", "MiniNet", "-storm", "Katrina", "-runs", root}, tiny...)
		_, stderr := runSplit(t, args...)
		if !strings.Contains(stderr, "wrote run manifest") {
			t.Errorf("missing manifest confirmation on stderr:\n%s", stderr)
		}
		return root, readOnlyManifest(t, root)
	}
	root1, d1 := runOnce()
	_, d2 := runOnce()

	section := func(data []byte, key string) string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("manifest not JSON: %v", err)
		}
		return string(m[key])
	}
	// Identical inputs: config and input checksums byte-equal, identity fresh.
	if section(d1, "config") != section(d2, "config") {
		t.Errorf("config sections differ:\n%s\nvs\n%s", section(d1, "config"), section(d2, "config"))
	}
	if section(d1, "inputs") != section(d2, "inputs") {
		t.Errorf("inputs sections differ:\n%s\nvs\n%s", section(d1, "inputs"), section(d2, "inputs"))
	}
	if section(d1, "run_id") == section(d2, "run_id") {
		t.Error("distinct runs share a run_id")
	}

	var m struct {
		Command string         `json:"command"`
		Status  string         `json:"status"`
		Config  map[string]any `json:"config"`
		Inputs  []struct {
			Name   string `json:"name"`
			SHA256 string `json:"sha256"`
			Bytes  int64  `json:"bytes"`
		} `json:"inputs"`
		Stages []struct {
			Stage string `json:"stage"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(d1, &m); err != nil {
		t.Fatal(err)
	}
	if m.Command != "outage" || m.Status != "ok" {
		t.Errorf("manifest header: command=%q status=%q", m.Command, m.Status)
	}
	if m.Config["storm"] != "Katrina" || m.Config["network"] != "MiniNet" {
		t.Errorf("config missing command flags: %v", m.Config)
	}
	if _, leaked := m.Config["runs"]; leaked {
		t.Error("observability flag leaked into the config section")
	}
	if len(m.Inputs) == 0 || len(m.Inputs[0].SHA256) != 64 || m.Inputs[0].Bytes <= 0 {
		t.Errorf("inputs = %+v", m.Inputs)
	}
	if len(m.Stages) == 0 {
		t.Error("manifest has no stage timings")
	}
	// Healthy run: no flight dump.
	entries, _ := os.ReadDir(root1)
	if _, err := os.Stat(filepath.Join(root1, entries[0].Name(), "flight.log")); !os.IsNotExist(err) {
		t.Error("flight.log written for a successful run")
	}
}

func TestCLIRunManifestFailure(t *testing.T) {
	topo := writeMiniTopo(t)
	root := t.TempDir()
	args := append([]string{"route", "-topology", topo, "-network", "MiniNet", "-from", "A", "-to", "Nowhere", "-runs", root}, tiny...)
	runExpectError(t, args...)
	data := readOnlyManifest(t, root)
	var m struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Status != "error" || m.Error == "" {
		t.Fatalf("failed run manifest: status=%q error=%q", m.Status, m.Error)
	}
	entries, _ := os.ReadDir(root)
	if _, err := os.Stat(filepath.Join(root, entries[0].Name(), "flight.log")); err != nil {
		t.Errorf("failed run should dump flight.log: %v", err)
	}
}
