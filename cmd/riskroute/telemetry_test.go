package main

// Telemetry-facing CLI tests: the stats subcommand's machine-readable
// report, the -telemetry exit report on ordinary subcommands, and
// deterministic output checks for the outage and backup commands.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// report mirrors the JSON emitted by `riskroute stats` and `-telemetry json`.
type telReport struct {
	Trace   *spanNode `json:"trace"`
	Metrics struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	} `json:"metrics"`
}

type spanNode struct {
	Name       string         `json:"name"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs"`
	Children   []*spanNode    `json:"children"`
}

func (s *spanNode) find(name string) *spanNode {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if got := c.find(name); got != nil {
			return got
		}
	}
	return nil
}

// runSplit runs the CLI capturing stdout and stderr separately — the
// telemetry report goes to stderr and must not pollute command output.
func runSplit(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(binPath, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("riskroute %s: %v\nstdout:\n%s\nstderr:\n%s",
			strings.Join(args, " "), err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestCLIStats(t *testing.T) {
	stdout, _ := runSplit(t, append([]string{"stats"}, tiny...)...)
	var rep telReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stats output is not JSON: %v\n%s", err, stdout)
	}
	if rep.Trace == nil {
		t.Fatal("stats report has no trace")
	}
	for _, stage := range []string{"parse", "fit", "engine-build", "sweep"} {
		span := rep.Trace.find(stage)
		if span == nil {
			t.Errorf("stats trace missing %q span", stage)
			continue
		}
		if span.DurationNS <= 0 {
			t.Errorf("%s span has non-positive duration %d ns", stage, span.DurationNS)
		}
	}
	if pairs := rep.Metrics.Counters["core.sweep.pairs_total"]; pairs <= 0 {
		t.Errorf("core.sweep.pairs_total = %d, want > 0", pairs)
	}
	if lines := rep.Metrics.Counters["topology.parse.lines_total"]; lines <= 0 {
		t.Errorf("topology.parse.lines_total = %d, want > 0", lines)
	}
	if h, ok := rep.Metrics.Histograms["core.engine.build_seconds"]; !ok || h.Count == 0 {
		t.Errorf("core.engine.build_seconds histogram missing or empty: %+v", h)
	}
	if _, ok := rep.Metrics.Gauges["runtime.goroutines"]; !ok {
		t.Error("report missing runtime.goroutines gauge")
	}
}

func TestCLIStatsText(t *testing.T) {
	stdout, _ := runSplit(t, append([]string{"stats", "-format", "text", "-network", "Abilene"}, tiny...)...)
	for _, want := range []string{"span", "sweep", "core.sweep.pairs_total", "hazard.fit.sources_total"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stats text report missing %q:\n%.400s", want, stdout)
		}
	}
	runExpectError(t, "stats", "-format", "yaml")
}

func TestCLITelemetryFlag(t *testing.T) {
	args := append([]string{"outage", "-storm", "Sandy", "-network", "Abilene", "-telemetry", "json"}, tiny...)
	stdout, stderr := runSplit(t, args...)
	// Command output stays on stdout, untouched by the report.
	if !strings.Contains(stdout, "failed PoPs") {
		t.Errorf("outage stdout missing command output:\n%s", stdout)
	}
	if strings.Contains(stdout, `"metrics"`) {
		t.Error("telemetry report leaked onto stdout")
	}
	var rep telReport
	if err := json.Unmarshal([]byte(stderr), &rep); err != nil {
		t.Fatalf("-telemetry json stderr is not JSON: %v\n%s", err, stderr)
	}
	if rep.Trace == nil || rep.Trace.Name != "outage" {
		t.Fatalf("root span = %+v, want name \"outage\"", rep.Trace)
	}
	// outage builds an engine but never runs the all-pairs sweep, so only
	// the fit and build stages appear.
	for _, stage := range []string{"fit", "engine-build"} {
		if span := rep.Trace.find(stage); span == nil || span.DurationNS <= 0 {
			t.Errorf("-telemetry trace missing live %q span: %+v", stage, span)
		}
	}
}

func TestCLITelemetryHealthBridge(t *testing.T) {
	// check attaches a PipelineHealth and runs a full Evaluate, so the
	// report carries the sweep span plus the bridged pipeline.* counters.
	args := append([]string{"check", "-network", "Abilene", "-telemetry", "json"}, tiny...)
	stdout, stderr := runSplit(t, args...)
	if !strings.Contains(stdout, "risk reduction") {
		t.Errorf("check stdout missing command output:\n%s", stdout)
	}
	var rep telReport
	if err := json.Unmarshal([]byte(stderr), &rep); err != nil {
		t.Fatalf("-telemetry json stderr is not JSON: %v\n%s", err, stderr)
	}
	for _, stage := range []string{"fit", "engine-build", "sweep"} {
		if span := rep.Trace.find(stage); span == nil || span.DurationNS <= 0 {
			t.Errorf("-telemetry trace missing live %q span: %+v", stage, span)
		}
	}
	if rep.Metrics.Counters["pipeline.hazard.ok_total"] <= 0 {
		t.Error("health bridge counter pipeline.hazard.ok_total not recorded")
	}
}

func TestCLITelemetryOffIsSilent(t *testing.T) {
	args := append([]string{"route", "-network", "Abilene", "-from", "Seattle", "-to", "Atlanta", "-telemetry", "off"}, tiny...)
	_, stderr := runSplit(t, args...)
	if stderr != "" {
		t.Errorf("-telemetry off still wrote to stderr:\n%s", stderr)
	}
}

// miniTopo is a three-city Gulf line with a redundant long-haul edge, small
// enough that outage and backup outputs are fully predictable.
const miniTopo = `network|MiniNet|tier1
pop|A|29.95|-90.07|LA
pop|B|32.30|-90.18|MS
pop|C|35.15|-90.05|TN
link|A|B
link|B|C
link|A|C
`

func writeMiniTopo(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mini.topo")
	if err := os.WriteFile(path, []byte(miniTopo), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIOutageDeterministic(t *testing.T) {
	path := writeMiniTopo(t)
	args := append([]string{"outage", "-topology", path, "-network", "MiniNet", "-storm", "Katrina"}, tiny...)
	out := run(t, args...)
	// Katrina's hurricane-force field covers New Orleans: PoP A fails,
	// B and C survive and stay connected over the B--C link.
	for _, want := range []string{
		"MiniNet under Katrina",
		"failed PoPs:        1 of 3",
		"- A",
		"disconnected pairs: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("outage output missing %q:\n%s", want, out)
		}
	}
	if again := run(t, args...); again != out {
		t.Error("outage output not deterministic for a fixed world seed")
	}
}

func TestCLIBackupDeterministic(t *testing.T) {
	path := writeMiniTopo(t)
	args := append([]string{"backup", "-topology", path, "-network", "MiniNet", "-from", "A", "-to", "C"}, tiny...)
	out := run(t, args...)
	if !strings.Contains(out, "fast-reroute plan, MiniNet: A -> C") {
		t.Errorf("backup header:\n%s", out)
	}
	// The triangle always leaves a detour: no single link failure may
	// disconnect the pair.
	if strings.Contains(out, "DISCONNECTED") {
		t.Errorf("triangle topology reported a disconnection:\n%s", out)
	}
	if strings.Count(out, "if ") < 1 {
		t.Errorf("backup lists no failure cases:\n%s", out)
	}
	if again := run(t, args...); again != out {
		t.Error("backup output not deterministic for a fixed world seed")
	}
}
