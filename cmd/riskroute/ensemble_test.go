package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runEnsemble runs the CLI via the shared runStdout helper, returning
// stdout as a string for byte-parity comparison.
func runEnsemble(t *testing.T, args ...string) string {
	t.Helper()
	return string(runStdout(t, args...))
}

var ensembleArgs = []string{
	"ensemble", "-networks", "Telepak,NTS", "-seed", "7",
	"-scenarios", "track=5,genesis=4,cut=6,disk=5,regional=5",
	"-route-pairs", "3",
}

// TestCLIEnsembleDeterministic pins the acceptance contract: the same seed
// produces byte-identical reports across runs and at any worker count.
func TestCLIEnsembleDeterministic(t *testing.T) {
	base := runEnsemble(t, append(append([]string{}, ensembleArgs...), tiny...)...)
	again := runEnsemble(t, append(append([]string{}, ensembleArgs...), tiny...)...)
	if base != again {
		t.Fatal("same seed produced different ensemble reports")
	}
	for _, workers := range []string{"1", "3"} {
		out := runEnsemble(t, append(append([]string{}, ensembleArgs...), append(tiny, "-workers", workers)...)...)
		if out != base {
			t.Fatalf("-workers %s changed the report bytes", workers)
		}
	}

	var rep struct {
		Seed      uint64 `json:"seed"`
		Scenarios int    `json:"scenarios"`
		Families  []struct {
			Family string `json:"family"`
			Count  int    `json:"count"`
		} `json:"families"`
		SharedConduitLinks *struct {
			Count int `json:"count"`
		} `json:"shared_conduit_links"`
		Networks []struct {
			Network  string `json:"network"`
			Families []struct {
				Family string `json:"family"`
			} `json:"families"`
		} `json:"networks"`
	}
	if err := json.Unmarshal([]byte(base), &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Seed != 7 || rep.Scenarios != 25 {
		t.Errorf("seed=%d scenarios=%d, want 7/25", rep.Seed, rep.Scenarios)
	}
	if len(rep.Families) != 5 {
		t.Errorf("%d families reported, want 5", len(rep.Families))
	}
	if len(rep.Networks) != 2 || rep.Networks[0].Network != "Telepak" {
		t.Errorf("networks: %+v", rep.Networks)
	}
	if rep.SharedConduitLinks == nil || rep.SharedConduitLinks.Count != 5 {
		t.Error("regional family swept but shared-conduit distribution missing or wrong size")
	}

	// A different seed must change the report.
	other := runEnsemble(t, append([]string{"ensemble", "-networks", "Telepak,NTS", "-seed", "8",
		"-scenarios", "track=5,genesis=4,cut=6,disk=5,regional=5", "-route-pairs", "3"}, tiny...)...)
	if other == base {
		t.Error("different seeds produced identical reports")
	}
}

// TestCLIEnsembleManifest checks the run ledger records the ensemble seed
// and scenario composition.
func TestCLIEnsembleManifest(t *testing.T) {
	dir := t.TempDir()
	runEnsemble(t, append(append([]string{}, ensembleArgs...), append(tiny, "-runs", dir)...)...)
	matches, err := filepath.Glob(filepath.Join(dir, "*", "manifest.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("manifest glob: %v, %v", matches, err)
	}
	buf, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	manifest := string(buf)
	for _, want := range []string{
		`"seed": "7"`, `"ensemble-seed": 7`,
		`"ensemble-scenarios": "track=5,genesis=4,cut=6,disk=5,regional=5"`,
		`"ensemble-count": 25`,
	} {
		if !strings.Contains(manifest, want) {
			t.Errorf("manifest missing %s:\n%s", want, manifest)
		}
	}
}

func TestCLIEnsembleRejectsSpanRisk(t *testing.T) {
	out := runExpectError(t, append([]string{"ensemble", "-span-risk"}, tiny...)...)
	if !strings.Contains(out, "span-risk") {
		t.Errorf("span-risk rejection message: %s", out)
	}
}

func TestCLIEnsembleBadSpec(t *testing.T) {
	runExpectError(t, append([]string{"ensemble", "-scenarios", "storm=5"}, tiny...)...)
	runExpectError(t, append([]string{"ensemble", "-storm", "Bob"}, tiny...)...)
}
