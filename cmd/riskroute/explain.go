package main

// riskroute explain — the batch front end to the daemon's attribution
// surface. Rather than reimplementing the decomposition and its JSON/GeoJSON
// encodings, the command boots the same serving world the daemon boots
// (riskroute.NewServer with identical synthetic-world inputs) and routes an
// in-process request through the same handler chain, then writes the raw
// response body. For the same world generation, `riskroute explain` and
// `curl riskrouted /v1/route?explain=1` are therefore byte-identical by
// construction — the parity the golden-fixture tests and the CI smoke test
// pin.

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strconv"

	"riskroute"
)

// explainOut receives the response body (stdout; tests redirect it).
var explainOut io.Writer = os.Stdout

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	w := addWorldFlags(fs)
	network := fs.String("network", "Level3", "network name")
	from := fs.String("from", "Houston", "source PoP name")
	to := fs.String("to", "Boston", "destination PoP name")
	lambdaH := fs.Float64("lambda-h", 1e5, "historical risk weight λ_h")
	lambdaF := fs.Float64("lambda-f", 1e3, "forecast risk weight λ_f")
	storm := fs.String("storm", "", "active storm (Irene, Katrina, Sandy) for forecast risk")
	advisoryNum := fs.Int("advisory", 0, "advisory number within the storm (0 = peak advisory)")
	format := fs.String("format", "json", "output format: json or geojson")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: riskroute explain [flags] [FROM TO]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() >= 2 {
		*from, *to = fs.Arg(0), fs.Arg(1)
	}
	if *format != "json" && *format != "geojson" {
		return fmt.Errorf("unknown format %q (want json or geojson)", *format)
	}
	if w.spanRisk {
		// The serving world prices risk at PoPs only; a span-risk explanation
		// would silently drop the span layer the flag asked for.
		return fmt.Errorf("explain does not support -span-risk (the serving world has no span-risk layer)")
	}

	adv, err := pickAdvisory(*storm, *advisoryNum)
	if err != nil {
		return err
	}
	net, err := w.network(*network)
	if err != nil {
		return err
	}
	// The daemon's world, in process: default paper parameters (per-request
	// λ go in the query string, exactly as a daemon client would send them),
	// no result cache (explanations bypass it anyway), no tracing middleware
	// (the body is identical either way; telemetry flows via tel.reg).
	srv, err := riskroute.NewServer(riskroute.ServeConfig{
		Networks:       []*riskroute.Network{net},
		Blocks:         w.blocks,
		EventScale:     w.eventScale,
		Seed:           seedFlag,
		Workers:        workersFlag,
		CacheSize:      -1,
		DisableTracing: true,
		Metrics:        tel.reg,
		Trace:          tel.trace,
		Logger:         tel.logger,
		Health:         tel.health,
	})
	if err != nil {
		return err
	}
	if adv != nil {
		if _, err := srv.ApplyParsed(adv); err != nil {
			return err
		}
	}

	q := url.Values{
		"network":  {net.Name},
		"from":     {*from},
		"to":       {*to},
		"lambda_h": {strconv.FormatFloat(*lambdaH, 'g', -1, 64)},
		"lambda_f": {strconv.FormatFloat(*lambdaF, 'g', -1, 64)},
		"explain":  {"1"},
	}
	if *format == "geojson" {
		q.Set("format", "geojson")
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/route?"+q.Encode(), nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("explain %s %s -> %s: %s", net.Name, *from, *to, errBody(rec.Body.Bytes(), rec.Code))
	}
	_, err = explainOut.Write(rec.Body.Bytes())
	return err
}

// errBody renders a failed in-process response for the terminal.
func errBody(body []byte, code int) string {
	if len(body) == 0 {
		return fmt.Sprintf("HTTP %d", code)
	}
	return fmt.Sprintf("HTTP %d: %s", code, body)
}
