package main

// Integration tests: build the CLI once and exercise every subcommand end
// to end with a reduced synthetic world. These catch flag wiring, output
// formatting, and cross-package plumbing that unit tests can't.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "riskroute-cli")
	if err != nil {
		panic(err)
	}
	binPath = filepath.Join(dir, "riskroute")
	build := exec.Command("go", "build", "-o", binPath, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		panic("building CLI: " + err.Error())
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// tiny are the world flags keeping each invocation fast.
var tiny = []string{"-blocks", "4000", "-event-scale", "0.03"}

func run(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binPath, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("riskroute %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binPath, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("riskroute %s: expected failure, got:\n%s", strings.Join(args, " "), out)
	}
	return string(out)
}

func TestCLINetworks(t *testing.T) {
	out := run(t, "networks")
	for _, want := range []string{"Level3", "233 PoPs", "Telepak", "regional"} {
		if !strings.Contains(out, want) {
			t.Errorf("networks output missing %q", want)
		}
	}
}

func TestCLIRoute(t *testing.T) {
	out := run(t, append([]string{"route", "-network", "Level3", "-from", "Houston", "-to", "Boston"}, tiny...)...)
	for _, want := range []string{"shortest", "riskroute", "Houston", "Boston", "risk reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("route output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIRouteWithStorm(t *testing.T) {
	out := run(t, append([]string{"route", "-network", "Sprint", "-from", "Miami", "-to", "Boston", "-storm", "Sandy"}, tiny...)...)
	if !strings.Contains(out, "Sandy advisory") {
		t.Errorf("storm route missing advisory tag:\n%s", out)
	}
}

func TestCLIRatios(t *testing.T) {
	out := run(t, append([]string{"ratios", "-network", "DT"}, tiny...)...)
	if !strings.Contains(out, "intradomain") || !strings.Contains(out, "risk reduction") {
		t.Errorf("ratios output:\n%s", out)
	}
}

func TestCLIProvision(t *testing.T) {
	out := run(t, append([]string{"provision", "-network", "Tinet", "-links", "2"}, tiny...)...)
	if !strings.Contains(out, "best additional links") || !strings.Contains(out, "bit-risk fraction") {
		t.Errorf("provision output:\n%s", out)
	}
}

func TestCLIPeers(t *testing.T) {
	out := run(t, append([]string{"peers", "-network", "Telepak"}, tiny...)...)
	if !strings.Contains(out, "candidate peerings for Telepak") {
		t.Errorf("peers output:\n%s", out)
	}
}

func TestCLIScope(t *testing.T) {
	out := run(t, "scope", "-storm", "Katrina")
	if !strings.Contains(out, "Katrina cumulative wind-field scope") {
		t.Errorf("scope output:\n%s", out)
	}
	// Gulf networks must appear.
	if !strings.Contains(out, "Telepak") && !strings.Contains(out, "Costreet") {
		t.Errorf("Katrina scope misses Gulf networks:\n%s", out)
	}
}

func TestCLIOutage(t *testing.T) {
	out := run(t, append([]string{"outage", "-storm", "Katrina", "-network", "Sprint"}, tiny...)...)
	for _, want := range []string{"failed PoPs", "disconnected pairs", "stranded population"} {
		if !strings.Contains(out, want) {
			t.Errorf("outage output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIBackup(t *testing.T) {
	out := run(t, append([]string{"backup", "-network", "NTT", "-from", "Seattle", "-to", "Miami"}, tiny...)...)
	if !strings.Contains(out, "fast-reroute plan") || !strings.Contains(out, "primary") {
		t.Errorf("backup output:\n%s", out)
	}
	if !strings.Contains(out, "if ") {
		t.Errorf("backup output lists no failure cases:\n%s", out)
	}
}

func TestCLIKPaths(t *testing.T) {
	out := run(t, append([]string{"kpaths", "-network", "Sprint", "-from", "Denver", "-to", "Miami", "-k", "3", "-sla-stretch", "0.25"}, tiny...)...)
	if !strings.Contains(out, "risk-diverse paths") || !strings.Contains(out, "SLA-constrained") {
		t.Errorf("kpaths output:\n%s", out)
	}
}

func TestCLIWeights(t *testing.T) {
	out := run(t, append([]string{"weights", "-network", "DT"}, tiny...)...)
	if !strings.Contains(out, "composite OSPF link weights") || !strings.Contains(out, "metric") {
		t.Errorf("weights output:\n%s", out)
	}
	if !strings.Contains(out, "verification:") {
		t.Errorf("weights output missing verification:\n%s", out)
	}
}

func TestCLISharedRisk(t *testing.T) {
	out := run(t, append([]string{"sharedrisk", "-top", "5"}, tiny...)...)
	if !strings.Contains(out, "shared disaster exposure") {
		t.Errorf("sharedrisk output:\n%s", out)
	}
	if strings.Count(out, "~") < 5 {
		t.Errorf("sharedrisk shows fewer than 5 pairs:\n%s", out)
	}
}

func TestCLITopologyFile(t *testing.T) {
	// Round-trip a custom topology file through the CLI.
	topo := `network|MiniNet|tier1
pop|A|29.95|-90.07|LA
pop|B|32.30|-90.18|MS
pop|C|35.15|-90.05|TN
link|A|B
link|B|C
`
	dir := t.TempDir()
	path := filepath.Join(dir, "mini.topo")
	if err := os.WriteFile(path, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, append([]string{"route", "-topology", path, "-network", "MiniNet", "-from", "A", "-to", "C"}, tiny...)...)
	if !strings.Contains(out, "A -> B -> C") {
		t.Errorf("custom topology route:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	out := runExpectError(t, "route", "-network", "NoSuchNet")
	if !strings.Contains(out, "unknown network") {
		t.Errorf("error message: %s", out)
	}
	out = runExpectError(t, "definitely-not-a-command")
	if !strings.Contains(out, "unknown command") {
		t.Errorf("error message: %s", out)
	}
	out = runExpectError(t, "scope", "-storm", "Bob")
	if !strings.Contains(out, "unknown storm") {
		t.Errorf("error message: %s", out)
	}
}

func TestCLIFIB(t *testing.T) {
	out := run(t, append([]string{"fib", "-network", "DT", "-from", "New York"}, tiny...)...)
	if !strings.Contains(out, "forwarding table") || !strings.Contains(out, "lfa") {
		t.Errorf("fib output:\n%s", out)
	}
	if !strings.Contains(out, "destinations protected") {
		t.Errorf("fib output missing protection summary:\n%s", out)
	}
}

func TestCLISeason(t *testing.T) {
	if testing.Short() {
		t.Skip("season fits four hazard models")
	}
	out := run(t, append([]string{"season", "-network", "Costreet"}, tiny...)...)
	for _, want := range []string{"Winter", "Spring", "Summer", "Fall", "risk reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("season output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIRouteSVG(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "route.svg")
	out := run(t, append([]string{"route", "-network", "Sprint", "-from", "Denver", "-to", "Miami", "-svg", svg}, tiny...)...)
	if !strings.Contains(out, "wrote "+svg) {
		t.Errorf("route output missing SVG confirmation:\n%s", out)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") || !strings.Contains(string(data), "polyline") {
		t.Errorf("SVG content malformed: %.120s", data)
	}
}

func TestCLIExportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.topo")
	run(t, "export", "-o", path)
	// The exported corpus feeds straight back into -topology.
	out := run(t, append([]string{"route", "-topology", path, "-network", "Abilene",
		"-from", "Seattle", "-to", "Atlanta"}, tiny...)...)
	if !strings.Contains(out, "riskroute") {
		t.Errorf("route over exported corpus:\n%s", out)
	}
	// GraphML export parses as XML.
	gml := filepath.Join(dir, "abilene.graphml")
	run(t, "export", "-network", "Abilene", "-format", "graphml", "-o", gml)
	data, err := os.ReadFile(gml)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<graphml") {
		t.Errorf("graphml export malformed: %.100s", data)
	}
	runExpectError(t, "export", "-format", "graphml") // needs -network
}

func TestCLICheckStorm(t *testing.T) {
	out := run(t, "check", "-storm", "Sandy", "-corrupt-rate", "0.3", "-fault-seed", "7")
	for _, want := range []string{"carried forward", "pipeline health: DEGRADED", "degraded"} {
		if !strings.Contains(out, want) {
			t.Errorf("check -storm output missing %q:\n%s", want, out)
		}
	}
	// Same seed, same faults: the report is reproducible verbatim.
	if again := run(t, "check", "-storm", "Sandy", "-corrupt-rate", "0.3", "-fault-seed", "7"); again != out {
		t.Error("check -storm output not deterministic for a fixed fault seed")
	}
}

func TestCLICheckTopology(t *testing.T) {
	topo := `network|Part|tier1
pop|A|9x.1|-90.07|LA
pop|B|32.30|-90.18|MS
pop|C|35.15|-90.05|TN
link|B|C
`
	path := filepath.Join(t.TempDir(), "part.topo")
	if err := os.WriteFile(path, []byte(topo), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "check", "-topology", path)
	if !strings.Contains(out, "1 networks survive") || !strings.Contains(out, "skipped line 2") {
		t.Errorf("lenient check output:\n%s", out)
	}
	out = runExpectError(t, "check", "-topology", path, "-strict")
	if !strings.Contains(out, "line 2") || !strings.Contains(out, "bad latitude") {
		t.Errorf("strict check error:\n%s", out)
	}
}

func TestCLICheckPipeline(t *testing.T) {
	out := run(t, append([]string{"check", "-network", "Abilene", "-drop-layer", "1"}, tiny...)...)
	for _, want := range []string{"4 hazard layers fitted", "re-normalized by 1.25", "dropped layer", "risk reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("pipeline check output missing %q:\n%s", want, out)
		}
	}
}

func TestCLISpanRisk(t *testing.T) {
	out := run(t, append([]string{"route", "-network", "Sprint", "-from", "Seattle", "-to", "Miami", "-span-risk"}, tiny...)...)
	if !strings.Contains(out, "risk reduction") {
		t.Errorf("span-risk route output:\n%s", out)
	}
}
