// Command riskmap renders ASCII maps of the RiskRoute data layers: the
// synthetic census density, each disaster catalog's fitted risk surface, the
// aggregate historical risk, network PoP locations, and hurricane scopes.
//
//	riskmap -layer population
//	riskmap -layer hurricane
//	riskmap -layer risk
//	riskmap -layer network -network Sprint
//	riskmap -layer storm -storm Sandy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"riskroute"
	"riskroute/internal/datasets"
	"riskroute/internal/geo"
	"riskroute/internal/hazard"
	"riskroute/internal/kde"
	"riskroute/internal/report"
)

func main() {
	layer := flag.String("layer", "risk",
		"map layer: population|hurricane|tornado|storm-events|earthquake|wind|risk|network|storm")
	network := flag.String("network", "Level3", "network for -layer network")
	storm := flag.String("storm", "Sandy", "storm for -layer storm")
	eventScale := flag.Float64("event-scale", 0.2, "disaster catalog scale")
	blocks := flag.Int("blocks", 20000, "census blocks for -layer population")
	rows := flag.Int("rows", 24, "map rows")
	cols := flag.Int("cols", 72, "map columns")
	seed := flag.Uint64("seed", 1, "world seed")
	svgPath := flag.String("svg", "", "also write the layer as an SVG file")
	svgWidth := flag.Int("svg-width", 900, "SVG width in pixels")
	flag.Parse()

	if err := run(*layer, *network, *storm, *eventScale, *blocks, *rows, *cols, *seed, *svgPath, *svgWidth); err != nil {
		fmt.Fprintln(os.Stderr, "riskmap:", err)
		os.Exit(1)
	}
}

// writeSVG renders the layer's SVG and saves it.
func writeSVG(path string, build func(m *report.SVGMap)) error {
	if path == "" {
		return nil
	}
	m := report.NewSVGMap(svgWidthGlobal)
	build(m)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Render(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

var svgWidthGlobal = 900

func run(layer, network, storm string, eventScale float64, blocks, rows, cols int, seed uint64, svgPath string, svgWidth int) error {
	svgWidthGlobal = svgWidth
	switch layer {
	case "population":
		census := riskroute.SyntheticCensus(blocks, seed)
		grid := geo.NewGrid(geo.ContinentalUS, 60, 140)
		f := kde.NewField(grid)
		f.Values = census.DensityField(grid)
		fmt.Printf("population density (%d census blocks)\n%s", blocks, report.HeatMap(f, rows, cols))
		return writeSVG(svgPath, func(m *report.SVGMap) {
			m.AddField(f, "#2c7fb8", 0.85)
		})

	case "hurricane", "tornado", "storm-events", "earthquake", "wind":
		et, err := eventTypeFor(layer)
		if err != nil {
			return err
		}
		count := int(float64(et.PaperCount()) * eventScale)
		events := datasets.GenerateEvents(et, count, seed)
		model, err := hazard.Fit([]hazard.Source{{
			Name: et.String(), Events: events, Bandwidth: et.PaperBandwidth(),
		}}, hazard.FitConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("%s risk surface (%d events, bandwidth %.2f mi)\n%s",
			et, len(events), et.PaperBandwidth(),
			report.HeatMap(model.Sources[0].Field, rows, cols))
		return writeSVG(svgPath, func(m *report.SVGMap) {
			m.AddField(model.Sources[0].Field, "#c0392b", 0.85)
		})

	case "risk":
		model, err := riskroute.FitHazard(riskroute.SyntheticHazardSources(eventScale, seed),
			riskroute.HazardFitConfig{})
		if err != nil {
			return err
		}
		grid := geo.NewGrid(geo.ContinentalUS, 60, 140)
		combined := model.CombinedField(grid)
		fmt.Printf("aggregate historical outage risk o_h\n%s", report.HeatMap(combined, rows, cols))
		return writeSVG(svgPath, func(m *report.SVGMap) {
			m.AddField(combined, "#c0392b", 0.85)
		})

	case "network":
		n := riskroute.BuiltinNetwork(network)
		if n == nil {
			return fmt.Errorf("unknown network %q", network)
		}
		fmt.Printf("%s: %d PoPs, %d links\n%s", n.Name, len(n.PoPs), len(n.Links),
			report.USOutline(n.Locations(), 'o', rows, cols))
		return writeSVG(svgPath, func(m *report.SVGMap) {
			m.AddLinks(n, "#888888", 0.7)
			m.AddPoPs(n.Locations(), 2.5, "#2c3e50")
		})

	case "storm":
		track := riskroute.HurricaneByName(storm)
		if track == nil {
			return fmt.Errorf("unknown storm %q", storm)
		}
		replay, err := riskroute.LoadHurricaneReplay(track)
		if err != nil {
			return err
		}
		scope := riskroute.ScopeOf(replay)
		grid := geo.NewGrid(geo.ContinentalUS, 60, 140)
		f := kde.NewField(grid)
		for r := 0; r < grid.Rows; r++ {
			for c := 0; c < grid.Cols; c++ {
				switch scope.Classify(grid.CellCenter(r, c)) {
				case riskroute.HurricaneForceScope:
					f.Values[grid.Index(r, c)] = 1.0
				case riskroute.TropicalForceScope:
					f.Values[grid.Index(r, c)] = 0.4
				}
			}
		}
		fmt.Printf("%s cumulative wind-field scope\n%s", storm, report.HeatMap(f, rows, cols))
		return writeSVG(svgPath, func(m *report.SVGMap) {
			for _, a := range replay.Advisories {
				m.AddGeoCircle(a.Center, a.TropicalRadiusMi, "#3498db", 0.05)
			}
			for _, a := range replay.Advisories {
				if a.HurricaneRadiusMi > 0 {
					m.AddGeoCircle(a.Center, a.HurricaneRadiusMi, "#c0392b", 0.10)
				}
			}
		})

	default:
		return fmt.Errorf("unknown layer %q", layer)
	}
}

func eventTypeFor(layer string) (datasets.EventType, error) {
	switch strings.ToLower(layer) {
	case "hurricane":
		return datasets.FEMAHurricane, nil
	case "tornado":
		return datasets.FEMATornado, nil
	case "storm-events":
		return datasets.FEMAStorm, nil
	case "earthquake":
		return datasets.NOAAEarthquake, nil
	case "wind":
		return datasets.NOAAWind, nil
	}
	return 0, fmt.Errorf("no event type for layer %q", layer)
}
