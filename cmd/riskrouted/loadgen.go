package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"riskroute"
)

// runLoadgen drives a running riskrouted with -clients concurrent clients
// for -duration, each issuing /v1/route queries over random PoP pairs of
// -loadgen-network, and prints throughput, latency percentiles, and the
// status-code breakdown. 429s are counted separately from errors: shedding
// load under pressure is the admission controller working, not a failure.
func runLoadgen(w io.Writer, o *options) error {
	base, err := url.Parse(o.target)
	if err != nil {
		return fmt.Errorf("loadgen: bad -target: %w", err)
	}
	client := &http.Client{Timeout: o.requestTO}

	pops, err := fetchPoPs(client, base, o.lgNetwork)
	if err != nil {
		return err
	}
	if len(pops) < 2 {
		return fmt.Errorf("loadgen: network %s has %d PoPs; need at least 2", o.lgNetwork, len(pops))
	}
	fmt.Fprintf(w, "loadgen: %d clients x %s against %s (%s, %d PoPs)\n",
		o.clients, o.duration, base, o.lgNetwork, len(pops))

	// Latencies accumulate into a shared concurrency-safe histogram; the
	// percentiles below come from Histogram.Quantile — the same estimator
	// the daemon's SLO engine uses — instead of a sorted sample slice.
	var (
		ok, throttled, failed atomic.Int64
		maxLatencyNS          atomic.Int64
		latencies             = riskroute.NewHistogram(riskroute.LatencyBuckets())
	)
	deadline := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Per-client RNG: deterministic pair sequence per (seed, client).
			rng := rand.New(rand.NewSource(int64(o.lgSeed) + int64(id)))
			for time.Now().Before(deadline) {
				i := rng.Intn(len(pops))
				j := rng.Intn(len(pops) - 1)
				if j >= i {
					j++
				}
				u := *base
				u.Path = "/v1/route"
				u.RawQuery = url.Values{
					"network": {o.lgNetwork},
					"from":    {pops[i]},
					"to":      {pops[j]},
				}.Encode()
				start := time.Now()
				resp, err := client.Get(u.String())
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
					dur := time.Since(start)
					latencies.Observe(dur.Seconds())
					for {
						cur := maxLatencyNS.Load()
						if int64(dur) <= cur || maxLatencyNS.CompareAndSwap(cur, int64(dur)) {
							break
						}
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					throttled.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	total := ok.Load() + throttled.Load() + failed.Load()
	fmt.Fprintf(w, "loadgen: %d requests in %s (%.1f req/s)\n",
		total, o.duration, float64(total)/o.duration.Seconds())
	fmt.Fprintf(w, "loadgen: %d ok, %d throttled (429), %d failed\n",
		ok.Load(), throttled.Load(), failed.Load())
	if latencies.Count() > 0 {
		q := func(p float64) time.Duration {
			return time.Duration(latencies.Quantile(p) * float64(time.Second)).Round(time.Microsecond)
		}
		fmt.Fprintf(w, "loadgen: latency p50=%s p90=%s p99=%s max=%s\n",
			q(0.50), q(0.90), q(0.99),
			time.Duration(maxLatencyNS.Load()).Round(time.Microsecond))
	}
	if failed.Load() > 0 {
		return fmt.Errorf("loadgen: %d requests failed", failed.Load())
	}
	return nil
}

// fetchPoPs asks the target for the PoP names of one network.
func fetchPoPs(client *http.Client, base *url.URL, network string) ([]string, error) {
	u := *base
	u.Path = "/v1/pops"
	u.RawQuery = url.Values{"network": {network}}.Encode()
	resp, err := client.Get(u.String())
	if err != nil {
		return nil, fmt.Errorf("loadgen: fetch PoPs: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("loadgen: fetch PoPs: %s: %s", resp.Status, body)
	}
	var body struct {
		PoPs []struct {
			Name string `json:"name"`
		} `json:"pops"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("loadgen: decode PoPs: %w", err)
	}
	names := make([]string, len(body.PoPs))
	for i, e := range body.PoPs {
		names[i] = e.Name
	}
	return names, nil
}
