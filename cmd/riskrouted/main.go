// Command riskrouted is the online RiskRoute serving daemon: it warms the
// hazard and population world once at startup, then serves risk-aware
// routing queries over HTTP and re-prices routes live as NHC advisories
// are POSTed to it.
//
//	riskrouted -addr :8080
//	curl 'localhost:8080/v1/route?network=Level3&from=Houston&to=Boston'
//	riskrouted -emit-advisory Sandy:30 | curl --data-binary @- localhost:8080/v1/advisory
//	curl 'localhost:8080/v1/route?network=Level3&from=Houston&to=Boston'   # re-priced
//
// Endpoints: /v1/route, /v1/ratio, /v1/pops, /v1/risk, /v1/advisory
// (GET current, POST ingest), /v1/healthz, /v1/readyz, /v1/ingest,
// /v1/generations (swap timeline), /v1/slo (burn rates), /metrics
// (Prometheus exposition), /debug/requests (tail-sampled slow/errored
// requests). Every response carries an X-Request-Id header.
//
// The daemon doubles as its own load generator:
//
//	riskrouted -loadgen -target http://localhost:8080 -clients 32 -duration 10s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"riskroute"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "riskrouted:", err)
		os.Exit(1)
	}
}

// options carries the parsed daemon configuration.
type options struct {
	addr        string
	networks    string
	blocks      int
	eventScale  float64
	seed        uint64
	workers     int
	worldSnap   string
	maxInFlight int
	queueTO     time.Duration
	requestTO   time.Duration
	drainTO     time.Duration
	cacheSize   int

	debugAddr     string
	reqIDSeed     uint64
	slowRequest   time.Duration
	sloLatency    time.Duration
	sloLatencyTgt float64
	sloErrorTgt   float64

	advisoryFeed     string
	journalDir       string
	pollInterval     time.Duration
	pollTO           time.Duration
	backoffMax       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	logMode          string
	telemetry        string
	runsDir          string

	emitAdvisory string
	loadgen      bool
	target       string
	clients      int
	duration     time.Duration
	lgNetwork    string
	lgSeed       uint64
}

func run(args []string) error {
	fs := flag.NewFlagSet("riskrouted", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.addr, "addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	fs.StringVar(&o.networks, "networks", "", "comma-separated subset of embedded networks to serve (default all 23)")
	fs.IntVar(&o.blocks, "blocks", 20000, "synthetic census blocks")
	fs.Float64Var(&o.eventScale, "event-scale", 0.2, "disaster catalog scale (1.0 = paper size)")
	fs.Uint64Var(&o.seed, "seed", 1, "world seed")
	fs.IntVar(&o.workers, "workers", 0, "max goroutines for warmup and snapshot rebuilds (0 = all cores)")
	fs.StringVar(&o.worldSnap, "world-snapshot", "", "boot the world from a baked snapshot file (`riskroute bake`) instead of fitting; a rejected snapshot falls back to a full fit")
	fs.IntVar(&o.maxInFlight, "max-inflight", 64, "max concurrently executing compute requests")
	fs.DurationVar(&o.queueTO, "queue-timeout", 100*time.Millisecond, "max wait for an admission slot before 429")
	fs.DurationVar(&o.requestTO, "request-timeout", 15*time.Second, "per-request deadline")
	fs.DurationVar(&o.drainTO, "drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	fs.IntVar(&o.cacheSize, "cache-size", 4096, "result cache entries (negative disables)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "serve pprof/expvar/metrics on a second listener (host:port; empty disables)")
	fs.Uint64Var(&o.reqIDSeed, "reqid-seed", 0, "request-ID generator seed (non-zero pins the exact ID sequence; 0 randomizes)")
	fs.DurationVar(&o.slowRequest, "slow-request", 250*time.Millisecond, "tail-sample successful requests at least this slow into /debug/requests")
	fs.DurationVar(&o.sloLatency, "slo-latency", 100*time.Millisecond, "SLO latency objective: requests slower than this burn the latency budget")
	fs.Float64Var(&o.sloLatencyTgt, "slo-latency-target", 0.99, "fraction of requests that must beat -slo-latency")
	fs.Float64Var(&o.sloErrorTgt, "slo-error-target", 0.999, "availability objective: fraction of requests that must not 5xx")
	fs.StringVar(&o.advisoryFeed, "advisory-feed", "", "continuous advisory feed: a directory of *.txt bulletins or an http(s) URL (requires -journal-dir)")
	fs.StringVar(&o.journalDir, "journal-dir", "", "advisory write-ahead journal directory; set alone to replay a journal at boot without polling")
	fs.DurationVar(&o.pollInterval, "poll-interval", 10*time.Second, "healthy-feed poll cadence")
	fs.DurationVar(&o.pollTO, "poll-timeout", 5*time.Second, "per-attempt feed poll deadline")
	fs.DurationVar(&o.backoffMax, "backoff-max", 2*time.Minute, "cap on the exponential feed retry delay")
	fs.IntVar(&o.breakerThreshold, "breaker-threshold", 5, "consecutive feed failures that trip the circuit breaker")
	fs.DurationVar(&o.breakerCooldown, "breaker-cooldown", 30*time.Second, "how long a tripped breaker stays open before probing the feed")
	fs.StringVar(&o.logMode, "log", "text", "structured log stream to stderr: text, json, or off")
	fs.StringVar(&o.telemetry, "telemetry", "", "emit a metrics report to stderr on exit: text or json")
	fs.StringVar(&o.runsDir, "runs", "", "write a run manifest for the server lifetime under dir/<runID>/")
	fs.StringVar(&o.emitAdvisory, "emit-advisory", "", "print an embedded storm's advisory text (Storm or Storm:N) and exit")
	fs.BoolVar(&o.loadgen, "loadgen", false, "run as a load generator against -target instead of serving")
	fs.StringVar(&o.target, "target", "http://localhost:8080", "loadgen: base URL of a running riskrouted")
	fs.IntVar(&o.clients, "clients", 16, "loadgen: concurrent clients")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "loadgen: run length")
	fs.StringVar(&o.lgNetwork, "loadgen-network", "Level3", "loadgen: network to query")
	fs.Uint64Var(&o.lgSeed, "loadgen-seed", 1, "loadgen: RNG seed for pair selection")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if o.emitAdvisory != "" {
		return emitAdvisory(os.Stdout, o.emitAdvisory)
	}
	if o.loadgen {
		return runLoadgen(os.Stdout, o)
	}
	return serveDaemon(o, fs)
}

// emitAdvisory prints one bulletin of an embedded storm's generated corpus:
// "Sandy:30" is advisory 30, bare "Sandy" the peak-wind advisory. The text
// is exactly what the replay pipeline parses, so it is the natural payload
// for POST /v1/advisory.
func emitAdvisory(w io.Writer, spec string) error {
	name, numStr, hasNum := strings.Cut(spec, ":")
	track := riskroute.HurricaneByName(name)
	if track == nil {
		return fmt.Errorf("unknown storm %q (embedded: Irene, Katrina, Sandy)", name)
	}
	replay, err := riskroute.LoadHurricaneReplay(track)
	if err != nil {
		return err
	}
	pick := -1
	if hasNum {
		n, err := strconv.Atoi(numStr)
		if err != nil || n < 1 || n > len(replay.Advisories) {
			return fmt.Errorf("storm %s has advisories 1..%d, got %q", name, len(replay.Advisories), numStr)
		}
		pick = n - 1
	} else {
		best := 0.0
		for i, a := range replay.Advisories {
			if a.MaxWindMPH > best {
				best, pick = a.MaxWindMPH, i
			}
		}
	}
	_, err = io.WriteString(w, replay.Advisories[pick].Text())
	return err
}

// serveDaemon warms the world, serves until SIGTERM/SIGINT, then drains.
func serveDaemon(o *options, fs *flag.FlagSet) error {
	reg := riskroute.NewMetrics()
	trace := riskroute.NewTrace("riskrouted")
	flight := riskroute.NewFlightRecorder(0)
	health := riskroute.NewPipelineHealth()
	health.AttachMetrics(reg)

	var logger *slog.Logger
	switch o.logMode {
	case "off":
		logger = slog.New(flight.Wrap(nil))
	case "text", "json":
		h, err := riskroute.NewLogHandler(o.logMode, os.Stderr)
		if err != nil {
			return err
		}
		logger = slog.New(flight.Wrap(h))
	default:
		return fmt.Errorf("unknown log format %q (want text, json, or off)", o.logMode)
	}
	health.AttachLogger(logger)

	var ledger *riskroute.RunLedger
	if o.runsDir != "" {
		var err error
		ledger, err = riskroute.NewRunLedger(o.runsDir, "riskrouted", os.Args[1:])
		if err != nil {
			return err
		}
		ledger.AttachFlight(flight)
	}

	var nets []*riskroute.Network
	if o.networks != "" {
		for _, name := range strings.Split(o.networks, ",") {
			name = strings.TrimSpace(name)
			n := riskroute.BuiltinNetwork(name)
			if n == nil {
				return fmt.Errorf("unknown network %q", name)
			}
			nets = append(nets, n)
		}
	}

	srv, err := riskroute.NewServer(riskroute.ServeConfig{
		Networks:          nets,
		Blocks:            o.blocks,
		EventScale:        o.eventScale,
		Seed:              o.seed,
		Workers:           o.workers,
		WorldSnapshotPath: o.worldSnap,
		MaxInFlight:       o.maxInFlight,
		QueueTimeout:      o.queueTO,
		RequestTimeout:    o.requestTO,
		CacheSize:         o.cacheSize,
		RequestIDSeed:     o.reqIDSeed,
		SlowRequest:       o.slowRequest,
		SLO: riskroute.SLOConfig{
			LatencyObjective: o.sloLatency,
			LatencyTarget:    o.sloLatencyTgt,
			ErrorTarget:      o.sloErrorTgt,
		},
		Metrics: reg,
		Trace:   trace,
		Logger:  logger,
		Health:  health,
	})
	if err != nil {
		return err
	}

	// Boot-path report: operators (and the CI bake smoke) read this line to
	// verify a node actually took the fast path. The ledger additionally
	// records the snapshot file's checksum as an input and its digest as
	// config, so a run manifest pins exactly which baked world served.
	if boot := srv.Boot(); boot.Path == "snapshot" {
		fmt.Printf("riskrouted: world booted from snapshot %s (digest %.12s) in %.1f ms\n",
			boot.SnapshotFile, boot.SnapshotDigest, boot.LoadSeconds*1e3)
		if ledger != nil {
			f, err := os.Open(o.worldSnap)
			if err != nil {
				return err
			}
			err = ledger.AddInput("world-snapshot:"+o.worldSnap, f)
			f.Close()
			if err != nil {
				return err
			}
			ledger.SetConfig("world-snapshot-digest", boot.SnapshotDigest)
		}
	} else if boot.Fallback {
		fmt.Printf("riskrouted: world snapshot rejected (%s); booted by full fit in %.1f s\n",
			boot.FallbackReason, boot.FitSeconds)
	}

	if o.debugAddr != "" {
		dbg, err := riskroute.ServeDebug(o.debugAddr, reg)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dbg.Close()
		fmt.Printf("riskrouted: debug listener on http://%s (pprof, expvar, /metrics)\n", dbg.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Continuous ingestion: recover the journal to the pre-crash generation
	// BEFORE accepting traffic, then start polling the feed (if one is
	// configured — -journal-dir alone is a recovery-only boot).
	if o.advisoryFeed != "" && o.journalDir == "" {
		return errors.New("-advisory-feed requires -journal-dir (the journal is what makes ingestion crash-safe)")
	}
	if o.journalDir != "" {
		var src riskroute.IngestSource
		if o.advisoryFeed != "" {
			src, err = riskroute.NewIngestSource(o.advisoryFeed)
			if err != nil {
				return err
			}
		}
		poller, err := riskroute.NewIngestPoller(riskroute.IngestConfig{
			Source:           src,
			JournalDir:       o.journalDir,
			Interval:         o.pollInterval,
			PollTimeout:      o.pollTO,
			BackoffMax:       o.backoffMax,
			BreakerThreshold: o.breakerThreshold,
			BreakerCooldown:  o.breakerCooldown,
			Seed:             o.seed,
			Metrics:          reg,
			Trace:            trace,
			Logger:           logger,
			Health:           health,
		}, srv)
		if err != nil {
			return err
		}
		defer poller.Close()
		if _, err := poller.Recover(); err != nil {
			return err
		}
		srv.AttachIngest(func() any { return poller.Status() })
		fmt.Printf("riskrouted: journal %s recovered to generation %d\n", o.journalDir, srv.Generation())
		if src != nil {
			go poller.Run(ctx)
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout so scripts (and the CI smoke job)
	// can scrape the port when -addr used :0.
	fmt.Printf("riskrouted: listening on http://%s (generation %d)\n", ln.Addr(), srv.Generation())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var runErr error
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			runErr = err
		}
	case <-ctx.Done():
		// Graceful drain: flip readiness first so load balancers stop
		// routing here, then let in-flight requests finish — but never
		// longer than -drain-timeout, so a wedged handler cannot turn
		// SIGTERM into a hung process.
		srv.Drain()
		shCtx, cancel := context.WithTimeout(context.Background(), o.drainTO)
		err := httpSrv.Shutdown(shCtx)
		cancel()
		if err != nil {
			if abandoned := srv.InFlight(); abandoned > 0 {
				logger.Warn("drain timeout expired; abandoning in-flight requests",
					"abandoned", abandoned, "drain_timeout", o.drainTO.String())
			}
			runErr = fmt.Errorf("drain: %w", err)
		}
	}
	trace.End()

	if o.telemetry == "text" || o.telemetry == "json" {
		riskroute.CaptureRuntime(reg)
		rep := riskroute.BuildTelemetryReport(reg, trace)
		var werr error
		if o.telemetry == "json" {
			werr = rep.WriteJSON(os.Stderr)
		} else {
			werr = rep.WriteText(os.Stderr)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "riskrouted: telemetry report:", werr)
		}
	}
	if ledger != nil {
		fs.VisitAll(func(f *flag.Flag) {
			switch f.Name {
			case "log", "telemetry", "runs":
			default:
				ledger.SetConfig(f.Name, f.Value.String())
			}
		})
		for _, e := range health.Events() {
			if sev := e.Severity.String(); sev != "ok" {
				detail := e.Detail
				if e.Err != nil {
					detail += " (" + e.Err.Error() + ")"
				}
				ledger.AddDegraded(riskroute.RunEvent{Stage: e.Stage, Severity: sev, Detail: detail})
			}
		}
		if err := ledger.Finish(trace, reg, runErr); err != nil {
			fmt.Fprintln(os.Stderr, "riskrouted: run ledger:", err)
		} else {
			fmt.Fprintf(os.Stderr, "riskrouted: wrote run manifest to %s/manifest.json\n",
				strings.TrimSuffix(ledger.Dir(), "/"))
		}
	}
	return runErr
}
