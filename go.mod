module riskroute

go 1.22
