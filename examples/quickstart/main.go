// Quickstart: route traffic between two PoPs with RiskRoute and compare it
// with geographic shortest-path routing — the paper's Figure 7 scenario
// (Level3, Houston → Boston) in a dozen lines of API.
package main

import (
	"fmt"
	"log"
	"strings"

	"riskroute"
)

func main() {
	// The embedded Level3 map: 233 PoPs over real US cities.
	net := riskroute.BuiltinNetwork("Level3")

	// Synthetic substrate data: a continental-US census and the five
	// disaster catalogs with the paper's trained kernel bandwidths.
	census := riskroute.SyntheticCensus(20000, 1)
	model, err := riskroute.FitHazard(
		riskroute.SyntheticHazardSources(0.2, 1), riskroute.HazardFitConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Outage impact: population served by each PoP (nearest neighbor).
	asg, err := riskroute.AssignPopulation(census, net)
	if err != nil {
		log.Fatal(err)
	}

	// Bit-risk-mile context at the paper's tuning (λ_h = 1e5, λ_f = 1e3).
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.PaperParams(),
	}
	engine, err := riskroute.NewEngine(ctx, riskroute.Options{})
	if err != nil {
		log.Fatal(err)
	}

	from := net.PoPIndex("Houston")
	to := net.PoPIndex("Boston")
	shortest := engine.ShortestPair(from, to)
	riskAware := engine.RiskRoutePair(from, to)

	show := func(label string, r riskroute.PairResult) {
		names := make([]string, len(r.Path))
		for i, v := range r.Path {
			names[i] = net.PoPs[v].Name
		}
		fmt.Printf("%-9s  %6.0f mi  %8.0f bit-risk mi\n  %s\n",
			label, r.Miles, r.BitRiskMiles, strings.Join(names, " -> "))
	}
	fmt.Println("Level3, Houston TX -> Boston MA")
	show("shortest", shortest)
	show("riskroute", riskAware)
	fmt.Printf("\nrisk reduction %.1f%% for %.1f%% extra distance\n",
		100*(1-riskAware.BitRiskMiles/shortest.BitRiskMiles),
		100*(riskAware.Miles/shortest.Miles-1))
}
