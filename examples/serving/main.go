// Serving: run the RiskRoute engine as an online service instead of a batch
// job. The daemon warms the hazard world once, serves risk-aware routing
// queries over HTTP, and — the part a batch run cannot do — re-prices every
// route in place when a new NHC advisory arrives, without dropping a single
// in-flight request. This example drives the whole lifecycle in-process:
// boot, query, advisory hot-swap, cache behaviour, and drain.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"riskroute"
)

func main() {
	// 1. Warm the serving world: one network, reduced synthetic scale so the
	// example runs in seconds. Production uses the defaults (all 23
	// networks, full CLI-equivalent world).
	net := riskroute.BuiltinNetwork("Sprint")
	srv, err := riskroute.NewServer(riskroute.ServeConfig{
		Networks:   []*riskroute.Network{net},
		Blocks:     4000,
		EventScale: 0.03,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s at generation %d\n", net.Name, srv.Generation())

	// 2. Expose the daemon's HTTP surface. A real deployment passes
	// srv.Handler() to http.Server; the test server keeps this runnable
	// without binding a port.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	from, to := net.PoPs[0].Name, net.PoPs[len(net.PoPs)-1].Name
	type leg struct {
		Path         []string `json:"path"`
		Miles        float64  `json:"miles"`
		BitRiskMiles float64  `json:"bit_risk_miles"`
	}
	var route struct {
		Generation uint64 `json:"generation"`
		Storm      string `json:"storm"`
		Shortest   leg    `json:"shortest"`
		RiskRoute  leg    `json:"riskroute"`
		Cached     bool   `json:"cached"`
	}
	query := func() {
		v := url.Values{"network": {net.Name}, "from": {from}, "to": {to}}
		resp, err := http.Get(ts.URL + "/v1/route?" + v.Encode())
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("route: %s: %s", resp.Status, body)
		}
		if err := json.Unmarshal(body, &route); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Route before the storm.
	query()
	fmt.Printf("generation %d: %s -> %s\n", route.Generation, from, to)
	fmt.Printf("  shortest  %6.0f mi  %8.0f bit-risk-miles\n",
		route.Shortest.Miles, route.Shortest.BitRiskMiles)
	fmt.Printf("  riskroute %6.0f mi  %8.0f bit-risk-miles\n",
		route.RiskRoute.Miles, route.RiskRoute.BitRiskMiles)

	// 4. The same query again is answered from the generation-keyed cache.
	query()
	fmt.Printf("repeat query cached: %v\n", route.Cached)

	// 5. Hurricane Sandy's peak advisory arrives. POSTing the bulletin text
	// re-prices the forecast risk layer and atomically publishes the next
	// generation — readers never block, and the old cache entries die with
	// their generation.
	replay, err := riskroute.LoadHurricaneReplay(riskroute.HurricaneByName("Sandy"))
	if err != nil {
		log.Fatal(err)
	}
	peak := replay.Advisories[0]
	for _, a := range replay.Advisories {
		if a.MaxWindMPH > peak.MaxWindMPH {
			peak = a
		}
	}
	resp, err := http.Post(ts.URL+"/v1/advisory", "text/plain", strings.NewReader(peak.Text()))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("advisory rejected: %s", resp.Status)
	}
	fmt.Printf("advisory hot-swap: %s advisory %d -> generation %d\n",
		peak.Storm, peak.Number, srv.Generation())

	// 6. Same pair, new generation: the forecast term now steers the route.
	query()
	fmt.Printf("generation %d (storm %s): cached=%v\n", route.Generation, route.Storm, route.Cached)
	fmt.Printf("  riskroute %6.0f mi  %8.0f bit-risk-miles\n",
		route.RiskRoute.Miles, route.RiskRoute.BitRiskMiles)

	// 7. Drain before shutdown: readiness flips so load balancers stop
	// sending traffic, while anything in flight finishes normally.
	srv.Drain()
	probe, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, probe.Body)
	probe.Body.Close()
	fmt.Printf("draining: readyz now %d\n", probe.StatusCode)
}
