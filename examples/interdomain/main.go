// Interdomain: evaluate a regional network's outage exposure across the
// full 23-network peering mesh and find its best new peering relationship —
// the paper's Sections 6.2/6.3 and Figures 8 and 11.
package main

import (
	"fmt"
	"log"

	"riskroute"
)

func main() {
	nets := riskroute.BuiltinNetworks()
	census := riskroute.SyntheticCensus(20000, 1)
	model, err := riskroute.FitHazard(
		riskroute.SyntheticHazardSources(0.2, 1), riskroute.HazardFitConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Composite routing graph: all 23 networks joined at co-located PoPs of
	// peered pairs.
	comp, err := riskroute.BuildComposite(nets, riskroute.BuiltinPeered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("composite mesh: %d PoPs, %d links\n\n", len(comp.Flat.PoPs), len(comp.Flat.Links))

	an, err := riskroute.NewInterdomainAnalysis(comp, model, census, nil,
		riskroute.Params{LambdaH: 1e5}, riskroute.Options{})
	if err != nil {
		log.Fatal(err)
	}

	var regionals []string
	for _, n := range riskroute.BuiltinRegional() {
		regionals = append(regionals, n.Name)
	}

	// Figure 8-style evaluation for a few regional networks: the gap
	// between shortest-path routing through the mesh (upper bound) and
	// RiskRoute with control of every network (lower bound).
	fmt.Println("interdomain ratios (sources: network PoPs; destinations: all regional PoPs):")
	for _, name := range []string{"Digex", "Telepak", "Hibernia", "NTS"} {
		r, err := an.RegionalRatios(name, regionals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s risk reduction %.3f  distance increase %.3f  (%d pairs)\n",
			name, r.RiskReduction, r.DistanceIncrease, r.Pairs)
	}

	// Figure 11: the best new peering for Telepak, scored by the
	// lower-bound bit-risk objective over its interdomain traffic.
	name := "Telepak"
	fmt.Printf("\ncandidate peerings for %s (currently peers with %v):\n",
		name, riskroute.BuiltinPeers(name))
	choices, err := riskroute.BestNewPeering(nets, riskroute.BuiltinPeered, name,
		regionals, model, census, riskroute.Params{LambdaH: 1e5}, riskroute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range choices {
		marker := ""
		if i == 0 {
			marker = "  <- best"
		}
		fmt.Printf("  %-14s bit-risk fraction %.4f  (%d shared cities)%s\n",
			c.Peer, c.Fraction, c.SharedCities, marker)
	}
}
