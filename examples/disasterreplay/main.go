// Disaster replay: watch RiskRoute react to Hurricane Sandy advisory by
// advisory — the paper's Figure 12 case study. Each NHC bulletin is
// generated from the embedded best track, parsed back by the NLP pipeline,
// converted to forecasted outage risk o_f at every PoP, and fed to the
// routing engine; the printed series is the risk-reduction ratio over
// shortest-path routing as the storm approaches and makes landfall.
package main

import (
	"fmt"
	"log"
	"strings"

	"riskroute"
)

func main() {
	net := riskroute.BuiltinNetwork("Sprint")
	census := riskroute.SyntheticCensus(20000, 1)
	model, err := riskroute.FitHazard(
		riskroute.SyntheticHazardSources(0.2, 1), riskroute.HazardFitConfig{})
	if err != nil {
		log.Fatal(err)
	}
	asg, err := riskroute.AssignPopulation(census, net)
	if err != nil {
		log.Fatal(err)
	}
	hist := model.PoPRisks(net)

	track := riskroute.HurricaneByName("Sandy")
	replay, err := riskroute.LoadHurricaneReplay(track)
	if err != nil {
		log.Fatal(err)
	}

	// Show one raw bulletin to demonstrate the NLP input.
	fmt.Println("sample advisory bulletin:")
	fmt.Println(indent(riskroute.AdvisoryCorpus(track)[45]))

	fc := riskroute.DefaultForecastModel() // ρ_t = 50, ρ_h = 100
	fmt.Println("Sprint during Hurricane Sandy (risk reduction ratio per advisory):")
	for i := 0; i < len(replay.Advisories); i += 5 {
		a := replay.Advisories[i]
		ctx := &riskroute.Context{
			Net:       net,
			Hist:      hist,
			Forecast:  fc.PoPRisks(a, net),
			Fractions: asg.Fractions,
			Params:    riskroute.PaperParams(),
		}
		engine, err := riskroute.NewEngine(ctx, riskroute.Options{})
		if err != nil {
			log.Fatal(err)
		}
		r := engine.Evaluate()
		bar := strings.Repeat("#", int(r.RiskReduction*200))
		fmt.Printf("  adv %2d  %s  %.3f %s\n",
			a.Number, a.Time.UTC().Format("Oct 02 15:04Z"), r.RiskReduction, bar)
	}

	// The storm's cumulative footprint over this network.
	scope := riskroute.ScopeOf(replay)
	h, trop := scope.PoPsInScope(net)
	fmt.Printf("\nfinal scope: %d/%d Sprint PoPs saw hurricane-force winds, %d tropical-force or stronger\n",
		h, len(net.PoPs), trop)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
