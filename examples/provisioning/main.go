// Provisioning: find the new links that best harden a network against
// outages — the paper's robustness analysis (Equation 4, Figures 9 and 10).
// The greedy sweep repeatedly adds the candidate link minimizing the
// network's total aggregated bit-risk miles and reports the decay.
package main

import (
	"fmt"
	"log"
	"strings"

	"riskroute"
)

func main() {
	net := riskroute.BuiltinNetwork("Tinet")
	census := riskroute.SyntheticCensus(20000, 1)
	model, err := riskroute.FitHazard(
		riskroute.SyntheticHazardSources(0.2, 1), riskroute.HazardFitConfig{})
	if err != nil {
		log.Fatal(err)
	}
	asg, err := riskroute.AssignPopulation(census, net)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.Params{LambdaH: 1e5},
	}
	engine, err := riskroute.NewEngine(ctx, riskroute.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The candidate set E_C: absent links whose direct connection would cut
	// the endpoints' bit-miles by more than half.
	cands := engine.CandidateLinks()
	fmt.Printf("%s: %d PoPs, %d links, %d candidate links (>50%% bit-mile reduction rule)\n\n",
		net.Name, len(net.PoPs), len(net.Links), len(cands))

	adds, err := engine.GreedyAdditionalLinks(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("greedy link additions (Equation 4):")
	for i, a := range adds {
		bar := strings.Repeat("#", int((1-a.Fraction)*300))
		fmt.Printf("  %d. %-16s -- %-16s  total bit-risk %.4f of original %s\n",
			i+1, net.PoPs[a.Link.A].Name, net.PoPs[a.Link.B].Name, a.Fraction, bar)
	}

	// Effect on routing quality: ratios before and after the additions.
	before := engine.Evaluate()
	augmented := net.Clone()
	for _, a := range adds {
		if err := augmented.AddLink(a.Link.A, a.Link.B); err != nil {
			log.Fatal(err)
		}
	}
	asg2, err := riskroute.AssignPopulation(census, augmented)
	if err != nil {
		log.Fatal(err)
	}
	ctx2 := &riskroute.Context{
		Net:       augmented,
		Hist:      model.PoPRisks(augmented),
		Fractions: asg2.Fractions,
		Params:    riskroute.Params{LambdaH: 1e5},
	}
	engine2, err := riskroute.NewEngine(ctx2, riskroute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	after := engine2.Evaluate()
	fmt.Printf("\nrisk reduction ratio vs shortest path: %.3f before, %.3f after provisioning\n",
		before.RiskReduction, after.RiskReduction)
}
