// Custom data: drive RiskRoute with your own inputs instead of the embedded
// corpus — a Topology-Zoo-style GraphML map, a hand-rolled census, custom
// per-catalog risk weights, a gravity-model traffic matrix as the impact
// term, and an outage simulation at the end. Everything passes through the
// same public API a downstream operator would use.
package main

import (
	"fmt"
	"log"
	"strings"

	"riskroute"
)

// A small Gulf-coast ISP in Topology Zoo's GraphML dialect.
const graphml = `<?xml version="1.0" encoding="utf-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d0"/>
  <key attr.name="Latitude" attr.type="double" for="node" id="d1"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d2"/>
  <graph edgedefault="undirected">
    <node id="0"><data key="d0">New Orleans</data><data key="d1">29.95</data><data key="d2">-90.07</data></node>
    <node id="1"><data key="d0">Baton Rouge</data><data key="d1">30.45</data><data key="d2">-91.15</data></node>
    <node id="2"><data key="d0">Jackson</data><data key="d1">32.30</data><data key="d2">-90.18</data></node>
    <node id="3"><data key="d0">Mobile</data><data key="d1">30.69</data><data key="d2">-88.04</data></node>
    <node id="4"><data key="d0">Birmingham</data><data key="d1">33.52</data><data key="d2">-86.80</data></node>
    <node id="5"><data key="d0">Memphis</data><data key="d1">35.15</data><data key="d2">-90.05</data></node>
    <edge source="0" target="1"/>
    <edge source="1" target="2"/>
    <edge source="0" target="3"/>
    <edge source="2" target="4"/>
    <edge source="3" target="4"/>
    <edge source="2" target="5"/>
    <edge source="4" target="5"/>
  </graph>
</graphml>`

func main() {
	// 1. Parse the operator's own map.
	net, err := riskroute.ParseGraphML(strings.NewReader(graphml), "GulfNet", riskroute.Tier1)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d PoPs, %d links\n", net.Name, len(net.PoPs), len(net.Links))

	// 2. The operator's own census (three metro blobs).
	var blocks []riskroute.Block
	for _, city := range []struct {
		p   riskroute.Point
		pop float64
		st  string
	}{
		{riskroute.Point{Lat: 29.95, Lon: -90.07}, 390000, "LA"},
		{riskroute.Point{Lat: 32.30, Lon: -90.18}, 160000, "MS"},
		{riskroute.Point{Lat: 33.52, Lon: -86.80}, 209000, "AL"},
		{riskroute.Point{Lat: 35.15, Lon: -90.05}, 651000, "TN"},
	} {
		blocks = append(blocks, riskroute.Block{Location: city.p, Population: city.pop, State: city.st})
	}
	census := riskroute.NewCensus(blocks)
	asg, err := riskroute.AssignPopulation(census, net)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Risk model with operator-defined emphasis: this network cares about
	// hurricanes twice as much as the default (first-floor equipment, per
	// the paper's Section 5.2 aside).
	model, err := riskroute.FitHazard(riskroute.SyntheticHazardSources(0.1, 1), riskroute.HazardFitConfig{})
	if err != nil {
		log.Fatal(err)
	}
	weights := riskroute.HazardWeights{"FEMA Hurricane": 2.0}
	if err := model.ValidateWeights(weights); err != nil {
		log.Fatal(err)
	}
	hist := model.WeightedPoPRisks(net, weights)

	// 4. Gravity-model traffic as the impact term instead of α = c_i + c_j.
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      hist,
		Fractions: asg.Fractions,
		Impact:    riskroute.GravityImpact(asg),
		Params:    riskroute.PaperParams(),
	}
	engine, err := riskroute.NewEngine(ctx, riskroute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	r := engine.Evaluate()
	fmt.Printf("traffic-weighted ratios: risk reduction %.3f, distance increase %.3f\n",
		r.RiskReduction, r.DistanceIncrease)

	no := net.PoPIndex("New Orleans")
	mem := net.PoPIndex("Memphis")
	rr := engine.RiskRoutePair(no, mem)
	names := make([]string, len(rr.Path))
	for i, v := range rr.Path {
		names[i] = net.PoPs[v].Name
	}
	fmt.Printf("New Orleans -> Memphis riskroute: %s (%.0f mi)\n", strings.Join(names, " -> "), rr.Miles)

	// 5. What would Katrina have done to this network?
	replay, err := riskroute.LoadHurricaneReplay(riskroute.HurricaneByName("Katrina"))
	if err != nil {
		log.Fatal(err)
	}
	scope := riskroute.ScopeOf(replay)
	var failed []int
	for i, p := range net.PoPs {
		if scope.Classify(p.Location) == riskroute.HurricaneForceScope {
			failed = append(failed, i)
		}
	}
	impact, err := engine.SimulateOutage(failed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Katrina simulation: %d PoPs down, %d pairs disconnected, %.1f%% population stranded\n",
		impact.FailedPoPs, impact.DisconnectedPairs, 100*impact.StrandedPopulation)
}
