package riskroute_test

// Ablation benchmarks for the implementation's main design choices:
//
//   - α-quantization bucket count (accuracy/speed trade-off of sharing one
//     weighted graph per impact bucket instead of per-pair searches),
//   - hazard raster resolution (KDE field cell size),
//   - the robustness candidate-set threshold,
//   - the SLA search width (k-shortest enumeration depth).
//
// The companion accuracy checks live in TestAblation* below — benchmarks
// measure cost, tests pin that the cheap configurations stay close to the
// exact ones.

import (
	"fmt"
	"math"
	"testing"

	"riskroute"
)

func ablationEngine(tb testing.TB, network string, buckets int) *riskroute.Engine {
	tb.Helper()
	lab := benchWorldTB(tb)
	net := riskroute.BuiltinNetwork(network)
	asg, err := riskroute.AssignPopulation(lab.Census, net)
	if err != nil {
		tb.Fatal(err)
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      lab.Model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.PaperParams(),
	}
	e, err := riskroute.NewEngine(ctx, riskroute.Options{AlphaBuckets: buckets})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// benchWorldTB adapts the shared bench world to testing.TB so the ablation
// tests can reuse it.
func benchWorldTB(tb testing.TB) *riskroute.Lab {
	tb.Helper()
	benchOnce.Do(func() {
		benchLab, benchErr = riskroute.NewLab(riskroute.LabConfig{
			CensusBlocks:        10000,
			EventScale:          0.2,
			MaxEventsPerCatalog: 8000,
			CellMiles:           25,
			AlphaBuckets:        12,
			ReplayStride:        10,
			CVCandidates:        8,
			CVMaxEvents:         600,
			Seed:                1,
		})
	})
	if benchErr != nil {
		tb.Fatalf("NewLab: %v", benchErr)
	}
	return benchLab
}

func BenchmarkAblationAlphaBuckets(b *testing.B) {
	for _, buckets := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			e := ablationEngine(b, "Level3", buckets)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Evaluate()
			}
		})
	}
}

func BenchmarkAblationExactPerPair(b *testing.B) {
	// The exact baseline the quantization replaces (per-pair Dijkstra) on a
	// mid-size Tier-1 network.
	e := ablationEngine(b, "Tinet", 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvaluateExact()
	}
}

func TestAblationAlphaBucketAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation accuracy is slow")
	}
	exact := ablationEngine(t, "Tinet", 16).EvaluateExact()
	for _, buckets := range []int{1, 4, 16, 64} {
		got := ablationEngine(t, "Tinet", buckets).Evaluate()
		diff := math.Abs(got.RiskReduction - exact.RiskReduction)
		// Even a single bucket should stay within a few points of exact;
		// 16+ buckets within half a point.
		limit := 0.05
		if buckets >= 16 {
			limit = 0.005
		}
		if diff > limit {
			t.Errorf("buckets=%d: rr %v vs exact %v (Δ %.4f > %.4f)",
				buckets, got.RiskReduction, exact.RiskReduction, diff, limit)
		}
	}
}

func BenchmarkAblationHazardResolution(b *testing.B) {
	sources := riskroute.SyntheticHazardSources(0.05, 1)
	for _, cell := range []float64{10, 20, 40} {
		b.Run(fmt.Sprintf("cellMiles=%.0f", cell), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := riskroute.FitHazard(sources, riskroute.HazardFitConfig{CellMiles: cell}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestAblationHazardResolutionAccuracy(t *testing.T) {
	sources := riskroute.SyntheticHazardSources(0.05, 1)
	fine, err := riskroute.FitHazard(sources, riskroute.HazardFitConfig{CellMiles: 10})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := riskroute.FitHazard(sources, riskroute.HazardFitConfig{CellMiles: 40})
	if err != nil {
		t.Fatal(err)
	}
	net := riskroute.BuiltinNetwork("Sprint")
	fr := fine.PoPRisks(net)
	cr := coarse.PoPRisks(net)
	// Coarsening must preserve the risk *ordering* of PoPs reasonably well:
	// check rank agreement of the riskiest quartile.
	topFine := topQuartile(fr)
	topCoarse := topQuartile(cr)
	common := 0
	for i := range topFine {
		if topFine[i] && topCoarse[i] {
			common++
		}
	}
	want := len(fr)/4 - 2
	if common < want {
		t.Errorf("risk-ranking overlap %d, want >= %d", common, want)
	}
}

func topQuartile(xs []float64) []bool {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if xs[idx[j]] > xs[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	out := make([]bool, n)
	for i := 0; i < n/4; i++ {
		out[idx[i]] = true
	}
	return out
}

func BenchmarkAblationCandidateThreshold(b *testing.B) {
	lab := benchWorldTB(b)
	net := riskroute.BuiltinNetwork("Tinet")
	asg, err := riskroute.AssignPopulation(lab.Census, net)
	if err != nil {
		b.Fatal(err)
	}
	ctx := &riskroute.Context{
		Net:       net,
		Hist:      lab.Model.PoPRisks(net),
		Fractions: asg.Fractions,
		Params:    riskroute.Params{LambdaH: 1e5},
	}
	for _, rule := range []float64{0.5, 0.35, 0.25} {
		b.Run(fmt.Sprintf("reduction=%.2f", rule), func(b *testing.B) {
			e, err := riskroute.NewEngine(ctx, riskroute.Options{CandidateReduction: rule})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands := e.CandidateLinks()
				if len(cands) > 0 {
					e.ScoreCandidates(cands)
				}
			}
		})
	}
}

func BenchmarkAblationSLASearchWidth(b *testing.B) {
	e := ablationEngine(b, "Level3", 16)
	net := riskroute.BuiltinNetwork("Level3")
	src, dst := net.PoPIndex("Houston"), net.PoPIndex("Boston")
	for _, width := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.SLAConstrainedPair(src, dst, 0.3, width); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestAblationSLAWidthConvergence(t *testing.T) {
	e := ablationEngine(t, "Sprint", 16)
	net := riskroute.BuiltinNetwork("Sprint")
	src, dst := net.PoPIndex("Seattle"), net.PoPIndex("Miami")
	prev := math.Inf(1)
	for _, width := range []int{2, 8, 32} {
		r, err := e.SLAConstrainedPair(src, dst, 0.5, width)
		if err != nil {
			t.Fatal(err)
		}
		if r.BitRiskMiles > prev+1e-9 {
			t.Errorf("width %d: cost %v rose above %v", width, r.BitRiskMiles, prev)
		}
		prev = r.BitRiskMiles
	}
}
