package riskroute_test

// One benchmark per table and figure of the paper's evaluation section,
// plus end-to-end pipeline benches. Each benchmark regenerates its
// experiment against a shared moderate-scale world (the full paper-scale
// run lives in cmd/experiments; a bench iteration must fit in seconds).
// Run with:
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"riskroute"
)

var (
	benchOnce sync.Once
	benchLab  *riskroute.Lab
	benchErr  error
)

func benchWorld(b *testing.B) *riskroute.Lab {
	b.Helper()
	return benchWorldTB(b) // shared with the ablation suite
}

func BenchmarkTable1KernelBandwidths(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Tier1Ratios(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Characteristics(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1InfrastructureMaps(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2PeeringMesh(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3PopulationAssignment(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4RiskSurfaces(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5ForecastSnapshots(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6StormScopes(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7HoustonBoston(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8RegionalScatter(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9BestLinksTinet(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure9("Tinet", 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10LinkDecay(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure10(4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11BestPeerings(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Tier1Replay(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure12("Katrina"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13RegionalReplay(b *testing.B) {
	lab := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.Figure13("Katrina"); err != nil {
			b.Fatal(err)
		}
	}
}

// Pipeline micro-benches: the building blocks downstream users pay for.

func BenchmarkPipelineHazardFit(b *testing.B) {
	sources := riskroute.SyntheticHazardSources(0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := riskroute.FitHazard(sources, riskroute.HazardFitConfig{CellMiles: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineAssignLevel3(b *testing.B) {
	lab := benchWorld(b)
	net := riskroute.BuiltinNetwork("Level3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := riskroute.AssignPopulation(lab.Census, net); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineEvaluateLevel3(b *testing.B) {
	lab := benchWorld(b)
	net := riskroute.BuiltinNetwork("Level3")
	e, err := lab.EngineFor(net, riskroute.PaperParams(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Evaluate()
	}
}

func BenchmarkPipelineRiskRoutePairLevel3(b *testing.B) {
	lab := benchWorld(b)
	net := riskroute.BuiltinNetwork("Level3")
	e, err := lab.EngineFor(net, riskroute.PaperParams(), nil)
	if err != nil {
		b.Fatal(err)
	}
	n := len(net.PoPs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RiskRoutePair(i%n, (i*37+11)%n)
	}
}

func BenchmarkPipelineAdvisoryRoundTrip(b *testing.B) {
	corpus := riskroute.AdvisoryCorpus(riskroute.HurricaneByName("Sandy"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := riskroute.ParseAdvisory(corpus[i%len(corpus)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineCompositeBuild(b *testing.B) {
	nets := riskroute.BuiltinNetworks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := riskroute.BuildComposite(nets, riskroute.BuiltinPeered); err != nil {
			b.Fatal(err)
		}
	}
}
